//! Hand-rolled argument parsing (the workspace deliberately has no CLI
//! dependency).

use std::fmt;
use std::time::Duration;

use chess_kernel::MemoryModel;

/// Usage text for `help` and parse errors.
pub const USAGE: &str = "\
fair-chess — fair stateless model checking (PLDI 2008) for the bundled workloads

USAGE:
    fair-chess list
        List workloads and their seedable bugs.

    fair-chess check <workload> [--bug <bug>] [options]
        Model-check the workload; print the outcome and, for errors, the
        reproducing trace.

    fair-chess cover <workload> [options]
        Measure distinct-state coverage of the search and compare with the
        stateful total (where feasible).

    fair-chess truth <workload> [--bug <bug>]
        Stateful ground truth: reachable states, deadlocks, violations,
        and the Streett fair-cycle (livelock) check.

    fair-chess fuzz [--systems <N>] [--seed <S>] [--jobs <J>] [options]
        Differential fuzzing: generate random transition systems, check
        the fair stateless search against the exhaustive stateful
        reference with one executable oracle per theorem, and write a
        minimized replayable corpus file for every error found. Exits
        nonzero iff any oracle disagreed.

    fair-chess replay <corpus-file>
        Re-run a corpus file written by `fuzz`: regenerate the system
        from its recorded seed and knobs and replay the minimized
        schedule, requiring the same outcome kind.

    fair-chess serve <manifest.json> [--workers <N>] [options]
        Run a campaign of check/fuzz jobs across supervised worker
        *processes* (the CLI re-execs itself through a hidden `worker`
        subcommand): idle workers steal the next ready job, a silent
        worker is killed by a watchdog and its job retried under
        exponential backoff, and a job that keeps killing workers is
        quarantined instead of looping forever. The exit code is the
        worst job outcome under the contract below (quarantine counts
        as 7). When no worker process can be spawned at all, the
        remaining jobs degrade to in-process execution with a warning.

    fair-chess daemon --listen <addr> --store <dir> [options]
        Long-running campaign daemon: accept manifests over a unix or
        TCP socket, run them through the worker pool one campaign at a
        time, and journal every verdict into a persistent
        content-addressed store. Campaigns are keyed by manifest
        content, so resubmitting a finished manifest returns the cached
        verdict without re-execution, and a daemon killed with -9 and
        restarted on the same --store resumes every in-flight campaign
        and re-answers finished ones byte-for-byte. Check jobs may
        declare \"shards\": K to fan out across the pool; shard reports
        are merged so the campaign report equals the unsharded run
        (byte-identically for dfs, deterministically for random:<seed>).

    fair-chess submit <manifest.json> --connect <addr> [--watch]
        Submit a campaign manifest to a daemon. Prints the campaign id
        (the manifest digest). With --watch, stream verdicts as they
        land and exit with the campaign's final code.

    fair-chess status [<campaign>] --connect <addr>
        One campaign's progress counters, or — without an id — every
        campaign the daemon knows about.

    fair-chess watch <campaign> --connect <addr>
        Stream a campaign's verdicts (replayed from the start, so a
        late subscriber sees the full history) until it finishes; exit
        with its final code.

    fair-chess cancel <campaign> --connect <addr>
        Cancel a queued or running campaign. Idempotent; prints the
        campaign's state.

    fair-chess results <campaign> --connect <addr>
        Print a finished campaign's deterministic report and exit with
        its code.

    fair-chess shutdown --connect <addr>
        Ask the daemon to shut down. A running campaign is parked and
        resumes when the daemon next starts on the same store.

OPTIONS:
    --bug <name>          Seed a bug (see `fair-chess list`).
    --memory <m>          sc | tso | pso   [default: sc]. Memory model:
                          tso/pso give every thread a FIFO store buffer
                          (per-location FIFOs under pso) whose flushes are
                          scheduled like ordinary thread steps and never
                          charge the preemption budget. Only workloads
                          built on atomics support tso/pso; `fair-chess
                          list` marks them with their memory models.
    --strategy <s>        dfs | cb:<N> | random:<seed>   [default: dfs]
    --reduce <mode>       none | sleep-sets   [default: none]. Sleep-set
                          partial-order reduction for dfs and cb:<N>:
                          prune interleavings that provably commute with
                          an already-explored one (fairness-forced edges
                          are never pruned). Incompatible with
                          --strategy random:<seed>, with --db, and with
                          --checkpoint/--resume (a reduced search is not
                          snapshot-resumable).
    --validate-effects    Capture-diff validation of the guests' declared
                          read/write sets: diff the shared-state cells
                          around every step and report any mutation
                          outside the declared write set as a safety
                          violation. `check` and `cover`.
    --unfair              Disable the fair scheduler (baseline mode).
    --db <N>              Backtracking horizon with a random tail
                          (the paper's unfair baseline configuration).
    --depth-bound <N>     Max transitions per execution [default: 100000].
    --max-executions <N>  Execution budget.
    --time-budget <SECS>  Wall-clock budget [default: 60 when no
                          execution budget is given either].
    --k <N>               Fairness k parameter (process every k-th yield).
    --jobs <N>            Parallel search workers [default: 1]. Shards the
                          strategy: random seeds per worker, DFS subtrees,
                          or context bounds (cb:<B> runs bounds 0..=B).
                          First error wins; its schedule is verified to
                          replay deterministically. `check` only.
    --shard <I/K>         Run shard I of K (0 <= I < K): this process
                          covers its contiguous slice of the root
                          decision frontier (dfs) or its slice of the
                          seed/budget split (random:<seed>), so K
                          cooperating processes cover the space. dfs
                          shard reports merge byte-identically to the
                          sequential run. Requires --jobs 1; not
                          combinable with cb:<N>, --reduce, --db, or
                          --checkpoint/--resume. `check` only.
    --no-trace            Do not print the counterexample trace.
    --checkpoint <FILE>   Periodically persist the search frontier, RNG
                          state, and cumulative statistics to FILE
                          (atomically: temp file + rename). On SIGINT or
                          SIGTERM the search stops at the next execution
                          boundary, flushes a final checkpoint, and exits
                          with code 6 (interrupted, resumable). `check`
                          with --jobs 1 only.
    --checkpoint-every <N>
                          Checkpoint every N completed executions
                          [default: 1000].
    --resume <FILE>       Resume an interrupted `check` from a checkpoint
                          journal. The workload, bug, strategy, and
                          fairness flags must match the original run; the
                          resumed search converges to the same final
                          report as an uninterrupted one.

FUZZ OPTIONS:
    --systems <N>         Number of random systems to check [default: 100].
    --seed <S>            Base seed; system i uses derive_seed(S, i) [default: 1].
    --jobs <J>            Worker threads sharding the systems [default: 1].
    --max-threads <N>     Max base threads per system [default: 3].
    --max-ops <N>         Max operations per thread [default: 4].
    --yield-percent <P>   Yield/politeness density 0..=100 [default: 60].
    --inject <kinds>      Comma-separated bug injections applied to every
                          system: safety, deadlock, livelock, panic.
    --memory <m>          sc | tso | pso   [default: sc]. tso/pso add a
                          relaxed-memory pass per system: a generated
                          atomic program is enumerated under sc, tso and
                          pso and the terminal-outcome sets must nest
                          (SC \u{2286} TSO \u{2286} PSO); the report compares
                          buffered vs sc execution counts.
    --corpus-dir <DIR>    Where to write corpus files [default: fuzz-corpus].
    --max-states <N>      Stateful-reference state cap; larger systems are
                          skipped [default: 200000].
    --reduce <mode>       none | sleep-sets   [default: none]. Adds the
                          sleep-* oracles: sleep-set DFS must report the
                          same verdict as unreduced DFS on every system
                          while exploring a subset of the executions, and
                          the aggregate reduction is printed.
    --checkpoint <FILE>   Persist the fuzz shard cursor and per-system
                          verdicts to FILE; SIGINT/SIGTERM flushes a final
                          checkpoint and exits with code 6.
    --resume <FILE>       Resume an interrupted fuzz campaign: systems
                          already checked are replayed from the journal
                          instead of re-fuzzed, so the final report matches
                          an uninterrupted run.

SERVE OPTIONS:
    --workers <N>         Worker processes [default: 2].
    --checkpoint <FILE>   Persist every job verdict to FILE (atomically:
                          temp file + fsync + rename) as it lands, so a
                          SIGKILL'd supervisor loses nothing: resuming
                          reprints the identical final report.
    --resume <FILE>       Resume a campaign from its verdict journal;
                          completed jobs are replayed from the records,
                          not re-run. The journal must match the
                          manifest (a digest is recorded and checked).
    --status-file <FILE>  Atomically rewrite a JSON progress snapshot
                          (total/done/quarantined/pending) as the
                          campaign advances.
    --heartbeat-timeout <SECS>
                          Watchdog deadline: a worker with no protocol
                          traffic for this long is killed and its job
                          requeued [default: 10].
    --max-attempts <N>    Attempts before a job is quarantined as
                          poison [default: 3].
    --jitter-seed <N>     Seed for the deterministic retry-backoff
                          jitter [default: 0].

DAEMON OPTIONS:
    --listen <addr>       Required. unix:/path.sock | tcp:host:port; a
                          bare path (contains '/') means unix, anything
                          else means tcp.
    --store <dir>         Required. Campaign store directory (created
                          if missing). One directory per campaign,
                          keyed by manifest digest, holding the
                          manifest and its atomically-rewritten verdict
                          journal.
    --workers <N>         Worker processes [default: 2].
    --heartbeat-timeout <SECS>
                          Watchdog deadline, as for serve [default: 10].
    --max-attempts <N>    Attempts before quarantine [default: 3].
    --jitter-seed <N>     Retry-backoff jitter seed [default: 0].

CLIENT OPTIONS (submit/status/watch/cancel/results/shutdown):
    --connect <addr>      Required. The daemon's --listen address (same
                          spellings).
    --watch               After submit: stream progress and exit with
                          the campaign's final code.

EXIT CODES:
    0  clean — search complete (or all fuzz oracles agreed), no error
    1  safety violation found (assertion failure or workload panic)
    2  usage or configuration error
    3  search incomplete — execution/time budget exhausted
    4  deadlock found
    5  livelock found (fair nontermination / divergence)
    6  interrupted by SIGINT/SIGTERM — checkpoint flushed, resumable
    7  internal error — a search worker was lost after repeated panics
";

/// The strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyOpt {
    /// Exhaustive depth-first search.
    Dfs,
    /// Context-bounded search with the given preemption bound.
    Cb(u32),
    /// Random walk with the given seed.
    Random(u64),
}

/// Options shared by `check` and `cover`.
#[derive(Debug, Clone)]
pub struct RunOpts {
    pub workload: String,
    pub bug: Option<String>,
    pub memory: MemoryModel,
    pub strategy: StrategyOpt,
    pub reduce: bool,
    pub validate_effects: bool,
    pub fair: bool,
    pub db: Option<usize>,
    pub depth_bound: usize,
    pub max_executions: Option<u64>,
    pub time_budget: Option<Duration>,
    pub k: u64,
    pub jobs: usize,
    pub shard: Option<(usize, usize)>,
    pub trace: bool,
    pub checkpoint: Option<String>,
    pub checkpoint_every: u64,
    pub resume: Option<String>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            workload: String::new(),
            bug: None,
            memory: MemoryModel::Sc,
            strategy: StrategyOpt::Dfs,
            reduce: false,
            validate_effects: false,
            fair: true,
            db: None,
            depth_bound: 100_000,
            max_executions: None,
            time_budget: None,
            k: 1,
            jobs: 1,
            shard: None,
            trace: true,
            checkpoint: None,
            checkpoint_every: 1000,
            resume: None,
        }
    }
}

/// Options for `fuzz`.
#[derive(Debug, Clone)]
pub struct FuzzOpts {
    pub systems: u64,
    pub seed: u64,
    pub jobs: usize,
    pub max_threads: usize,
    pub max_ops: usize,
    pub yield_percent: u32,
    pub inject_safety: bool,
    pub inject_deadlock: bool,
    pub inject_livelock: bool,
    pub inject_panic: bool,
    pub memory: MemoryModel,
    pub corpus_dir: String,
    pub max_states: usize,
    pub reduce: bool,
    pub checkpoint: Option<String>,
    pub resume: Option<String>,
}

impl Default for FuzzOpts {
    fn default() -> Self {
        FuzzOpts {
            systems: 100,
            seed: 1,
            jobs: 1,
            max_threads: 3,
            max_ops: 4,
            yield_percent: 60,
            inject_safety: false,
            inject_deadlock: false,
            inject_livelock: false,
            inject_panic: false,
            memory: MemoryModel::Sc,
            corpus_dir: "fuzz-corpus".into(),
            max_states: 200_000,
            reduce: false,
            checkpoint: None,
            resume: None,
        }
    }
}

/// Options for `replay`.
#[derive(Debug, Clone)]
pub struct ReplayOpts {
    pub file: String,
}

/// Options for `serve` (the process-pool campaign supervisor).
#[derive(Debug, Clone)]
pub struct ServeOpts {
    pub manifest: String,
    pub workers: usize,
    pub checkpoint: Option<String>,
    pub resume: Option<String>,
    pub status_file: Option<String>,
    pub heartbeat_timeout: Duration,
    pub max_attempts: u32,
    pub jitter_seed: u64,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            manifest: String::new(),
            workers: 2,
            checkpoint: None,
            resume: None,
            status_file: None,
            heartbeat_timeout: Duration::from_secs(10),
            max_attempts: 3,
            jitter_seed: 0,
        }
    }
}

/// Options for `daemon` (the long-running campaign daemon).
#[derive(Debug, Clone)]
pub struct DaemonOpts {
    pub listen: String,
    pub store: String,
    pub workers: usize,
    pub heartbeat_timeout: Duration,
    pub max_attempts: u32,
    pub jitter_seed: u64,
}

impl Default for DaemonOpts {
    fn default() -> Self {
        DaemonOpts {
            listen: String::new(),
            store: String::new(),
            workers: 2,
            heartbeat_timeout: Duration::from_secs(10),
            max_attempts: 3,
            jitter_seed: 0,
        }
    }
}

/// One daemon-client operation (the campaign id stays a string here;
/// the client parses it against the store's hex-digest grammar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientOp {
    /// `fair-chess submit <manifest> [--watch]`
    Submit { manifest: String, watch: bool },
    /// `fair-chess status [<campaign>]`
    Status { campaign: Option<String> },
    /// `fair-chess watch <campaign>`
    Watch { campaign: String },
    /// `fair-chess cancel <campaign>`
    Cancel { campaign: String },
    /// `fair-chess results <campaign>`
    Results { campaign: String },
    /// `fair-chess shutdown`
    Shutdown,
}

/// Options shared by the daemon-client subcommands.
#[derive(Debug, Clone)]
pub struct ClientOpts {
    pub op: ClientOp,
    pub connect: String,
}

/// Options for the hidden `worker` subcommand (the process a `serve`
/// supervisor re-execs; not documented in [`USAGE`]).
#[derive(Debug, Clone)]
pub struct WorkerOpts {
    /// How often the protocol loop checks the job's progress counters
    /// and, if they advanced, emits a heartbeat.
    pub heartbeat_millis: u64,
}

impl Default for WorkerOpts {
    fn default() -> Self {
        WorkerOpts {
            heartbeat_millis: 200,
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone)]
pub enum Command {
    /// `fair-chess list`
    List,
    /// `fair-chess help`
    Help,
    /// `fair-chess check ...`
    Check(RunOpts),
    /// `fair-chess cover ...`
    Cover(RunOpts),
    /// `fair-chess truth <workload> [--bug ...]`
    Truth(RunOpts),
    /// `fair-chess fuzz ...`
    Fuzz(FuzzOpts),
    /// `fair-chess replay <file>`
    Replay(ReplayOpts),
    /// `fair-chess serve <manifest> ...`
    Serve(ServeOpts),
    /// `fair-chess daemon --listen ... --store ...`
    Daemon(DaemonOpts),
    /// `fair-chess submit/status/watch/cancel/results/shutdown ...`
    Client(ClientOpts),
    /// `fair-chess worker ...` (hidden: spawned by `serve` and `daemon`)
    Worker(WorkerOpts),
}

/// A parse failure with a human-readable message.
#[derive(Debug)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Parses a strategy in its command-line spelling; also used by the
/// campaign job codec, which records strategies the same way.
pub(crate) fn parse_strategy(s: &str) -> Result<StrategyOpt, ParseError> {
    if s == "dfs" {
        return Ok(StrategyOpt::Dfs);
    }
    if let Some(n) = s.strip_prefix("cb:") {
        return match n.parse() {
            Ok(n) => Ok(StrategyOpt::Cb(n)),
            Err(_) => err(format!("invalid preemption bound in '{s}'")),
        };
    }
    if let Some(seed) = s.strip_prefix("random:") {
        return match seed.parse() {
            Ok(seed) => Ok(StrategyOpt::Random(seed)),
            Err(_) => err(format!("invalid seed in '{s}'")),
        };
    }
    err(format!(
        "unknown strategy '{s}' (expected dfs, cb:<N>, or random:<seed>)"
    ))
}

fn parse_reduce(s: &str) -> Result<bool, ParseError> {
    match s {
        "none" => Ok(false),
        "sleep-sets" => Ok(true),
        other => err(format!(
            "unknown reduction '{other}' (expected none or sleep-sets)"
        )),
    }
}

fn parse_run_opts(args: &[String]) -> Result<RunOpts, ParseError> {
    let mut opts = RunOpts::default();
    let mut it = args.iter();
    let Some(workload) = it.next() else {
        return err("missing workload name");
    };
    if workload.starts_with('-') {
        return err("the workload name must come before options");
    }
    opts.workload = workload.clone();

    let next_value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| ParseError(format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bug" => opts.bug = Some(next_value("--bug", &mut it)?),
            "--memory" => {
                opts.memory = next_value("--memory", &mut it)?
                    .parse()
                    .map_err(ParseError)?;
            }
            "--strategy" => {
                opts.strategy = parse_strategy(&next_value("--strategy", &mut it)?)?;
            }
            "--reduce" => opts.reduce = parse_reduce(&next_value("--reduce", &mut it)?)?,
            "--validate-effects" => opts.validate_effects = true,
            "--unfair" => opts.fair = false,
            "--db" => {
                opts.db = Some(parse_num("--db", &next_value("--db", &mut it)?)?);
            }
            "--depth-bound" => {
                opts.depth_bound =
                    parse_num("--depth-bound", &next_value("--depth-bound", &mut it)?)?;
            }
            "--max-executions" => {
                opts.max_executions = Some(parse_num(
                    "--max-executions",
                    &next_value("--max-executions", &mut it)?,
                )? as u64);
            }
            "--time-budget" => {
                let secs: f64 = next_value("--time-budget", &mut it)?
                    .parse()
                    .map_err(|_| ParseError("--time-budget needs seconds".into()))?;
                opts.time_budget = Some(Duration::from_secs_f64(secs));
            }
            "--k" => opts.k = parse_num("--k", &next_value("--k", &mut it)?)? as u64,
            "--jobs" => {
                opts.jobs = parse_num("--jobs", &next_value("--jobs", &mut it)?)?;
                if opts.jobs == 0 {
                    return err("--jobs needs at least 1 worker");
                }
            }
            "--shard" => {
                let v = next_value("--shard", &mut it)?;
                let Some((index, of)) = v.split_once('/') else {
                    return err(format!("--shard needs I/K (e.g. 0/4), got '{v}'"));
                };
                let index = parse_num("--shard", index)?;
                let of = parse_num("--shard", of)?;
                if of == 0 || index >= of {
                    return err(format!("--shard needs 0 <= I < K, got '{v}'"));
                }
                opts.shard = Some((index, of));
            }
            "--no-trace" => opts.trace = false,
            "--checkpoint" => opts.checkpoint = Some(next_value("--checkpoint", &mut it)?),
            "--checkpoint-every" => {
                opts.checkpoint_every = parse_num(
                    "--checkpoint-every",
                    &next_value("--checkpoint-every", &mut it)?,
                )? as u64;
                if opts.checkpoint_every == 0 {
                    return err("--checkpoint-every needs at least 1");
                }
            }
            "--resume" => opts.resume = Some(next_value("--resume", &mut it)?),
            other => return err(format!("unknown option '{other}'")),
        }
    }
    if (opts.checkpoint.is_some() || opts.resume.is_some()) && opts.jobs > 1 {
        return err("--checkpoint/--resume require --jobs 1 (the journal records one frontier)");
    }
    if opts.reduce {
        if opts.checkpoint.is_some() || opts.resume.is_some() {
            return err(
                "--reduce sleep-sets cannot be combined with --checkpoint/--resume \
                 (a reduced search is not snapshot-resumable)",
            );
        }
        if matches!(opts.strategy, StrategyOpt::Random(_)) {
            return err("--reduce sleep-sets needs a systematic strategy (dfs or cb:<N>)");
        }
        if opts.db.is_some() {
            return err(
                "--reduce sleep-sets cannot be combined with --db (the horizon's \
                 random tail defeats the explored-sibling bookkeeping)",
            );
        }
    }
    if opts.shard.is_some() {
        if opts.jobs > 1 {
            return err(
                "--shard requires --jobs 1 (each shard is one process; parallelism \
                 comes from running the other shards elsewhere)",
            );
        }
        if opts.checkpoint.is_some() || opts.resume.is_some() {
            return err("--shard cannot be combined with --checkpoint/--resume");
        }
        if opts.reduce {
            return err(
                "--shard cannot be combined with --reduce (sleep sets depend on the \
                 whole exploration order, so shard reports would not merge to the \
                 unsharded one)",
            );
        }
        if opts.db.is_some() {
            return err(
                "--shard cannot be combined with --db (the horizon's random \
                        tail is sequential-only)",
            );
        }
        if matches!(opts.strategy, StrategyOpt::Cb(_)) {
            return err(
                "--shard needs --strategy dfs or random:<seed> (context-bound state \
                 is path-dependent, so root slices would not merge to the sequential \
                 report)",
            );
        }
    }
    Ok(opts)
}

fn parse_num(flag: &str, s: &str) -> Result<usize, ParseError> {
    s.parse()
        .map_err(|_| ParseError(format!("{flag} needs a number, got '{s}'")))
}

fn parse_fuzz_opts(args: &[String]) -> Result<FuzzOpts, ParseError> {
    let mut opts = FuzzOpts::default();
    let mut it = args.iter();
    let next_value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| ParseError(format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--systems" => {
                opts.systems = parse_num("--systems", &next_value("--systems", &mut it)?)? as u64;
            }
            "--seed" => {
                let v = next_value("--seed", &mut it)?;
                opts.seed = v
                    .parse()
                    .map_err(|_| ParseError(format!("--seed needs a number, got '{v}'")))?;
            }
            "--jobs" => {
                opts.jobs = parse_num("--jobs", &next_value("--jobs", &mut it)?)?;
                if opts.jobs == 0 {
                    return err("--jobs needs at least 1 worker");
                }
            }
            "--max-threads" => {
                opts.max_threads =
                    parse_num("--max-threads", &next_value("--max-threads", &mut it)?)?;
                if opts.max_threads < 2 {
                    return err("--max-threads needs at least 2");
                }
            }
            "--max-ops" => {
                opts.max_ops = parse_num("--max-ops", &next_value("--max-ops", &mut it)?)?;
                if opts.max_ops == 0 {
                    return err("--max-ops needs at least 1");
                }
            }
            "--yield-percent" => {
                let p = parse_num("--yield-percent", &next_value("--yield-percent", &mut it)?)?;
                if p > 100 {
                    return err("--yield-percent must be 0..=100");
                }
                opts.yield_percent = p as u32;
            }
            "--inject" => {
                for kind in next_value("--inject", &mut it)?.split(',') {
                    match kind.trim() {
                        "safety" => opts.inject_safety = true,
                        "deadlock" => opts.inject_deadlock = true,
                        "livelock" => opts.inject_livelock = true,
                        "panic" => opts.inject_panic = true,
                        other => {
                            return err(format!(
                                "unknown injection '{other}' (expected safety, deadlock, \
                                 livelock, or panic)"
                            ))
                        }
                    }
                }
            }
            "--memory" => {
                opts.memory = next_value("--memory", &mut it)?
                    .parse()
                    .map_err(ParseError)?;
            }
            "--corpus-dir" => opts.corpus_dir = next_value("--corpus-dir", &mut it)?,
            "--max-states" => {
                opts.max_states = parse_num("--max-states", &next_value("--max-states", &mut it)?)?;
            }
            "--reduce" => opts.reduce = parse_reduce(&next_value("--reduce", &mut it)?)?,
            "--checkpoint" => opts.checkpoint = Some(next_value("--checkpoint", &mut it)?),
            "--resume" => opts.resume = Some(next_value("--resume", &mut it)?),
            other => return err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

fn parse_serve_opts(args: &[String]) -> Result<ServeOpts, ParseError> {
    let mut opts = ServeOpts::default();
    let mut it = args.iter();
    let Some(manifest) = it.next() else {
        return err("serve needs a campaign manifest file");
    };
    if manifest.starts_with('-') {
        return err("the manifest file must come before options");
    }
    opts.manifest = manifest.clone();
    let next_value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| ParseError(format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                opts.workers = parse_num("--workers", &next_value("--workers", &mut it)?)?;
                if opts.workers == 0 {
                    return err("--workers needs at least 1 worker");
                }
            }
            "--checkpoint" => opts.checkpoint = Some(next_value("--checkpoint", &mut it)?),
            "--resume" => opts.resume = Some(next_value("--resume", &mut it)?),
            "--status-file" => opts.status_file = Some(next_value("--status-file", &mut it)?),
            "--heartbeat-timeout" => {
                let secs: f64 = next_value("--heartbeat-timeout", &mut it)?
                    .parse()
                    .map_err(|_| ParseError("--heartbeat-timeout needs seconds".into()))?;
                if secs.is_nan() || secs <= 0.0 {
                    return err("--heartbeat-timeout must be positive");
                }
                opts.heartbeat_timeout = Duration::from_secs_f64(secs);
            }
            "--max-attempts" => {
                opts.max_attempts =
                    parse_num("--max-attempts", &next_value("--max-attempts", &mut it)?)? as u32;
                if opts.max_attempts == 0 {
                    return err("--max-attempts needs at least 1");
                }
            }
            "--jitter-seed" => {
                let v = next_value("--jitter-seed", &mut it)?;
                opts.jitter_seed = v
                    .parse()
                    .map_err(|_| ParseError(format!("--jitter-seed needs a number, got '{v}'")))?;
            }
            other => return err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

fn parse_daemon_opts(args: &[String]) -> Result<DaemonOpts, ParseError> {
    let mut opts = DaemonOpts::default();
    let mut it = args.iter();
    let next_value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| ParseError(format!("{flag} needs a value")))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--listen" => opts.listen = next_value("--listen", &mut it)?,
            "--store" => opts.store = next_value("--store", &mut it)?,
            "--workers" => {
                opts.workers = parse_num("--workers", &next_value("--workers", &mut it)?)?;
                if opts.workers == 0 {
                    return err("--workers needs at least 1 worker");
                }
            }
            "--heartbeat-timeout" => {
                let secs: f64 = next_value("--heartbeat-timeout", &mut it)?
                    .parse()
                    .map_err(|_| ParseError("--heartbeat-timeout needs seconds".into()))?;
                if secs.is_nan() || secs <= 0.0 {
                    return err("--heartbeat-timeout must be positive");
                }
                opts.heartbeat_timeout = Duration::from_secs_f64(secs);
            }
            "--max-attempts" => {
                opts.max_attempts =
                    parse_num("--max-attempts", &next_value("--max-attempts", &mut it)?)? as u32;
                if opts.max_attempts == 0 {
                    return err("--max-attempts needs at least 1");
                }
            }
            "--jitter-seed" => {
                let v = next_value("--jitter-seed", &mut it)?;
                opts.jitter_seed = v
                    .parse()
                    .map_err(|_| ParseError(format!("--jitter-seed needs a number, got '{v}'")))?;
            }
            other => return err(format!("unknown option '{other}'")),
        }
    }
    if opts.listen.is_empty() {
        return err("daemon needs --listen <addr> (unix:/path.sock or tcp:host:port)");
    }
    if opts.store.is_empty() {
        return err("daemon needs --store <dir> (the persistent campaign store)");
    }
    Ok(opts)
}

fn parse_client_opts(op: &str, args: &[String]) -> Result<ClientOpts, ParseError> {
    let mut positional: Vec<String> = Vec::new();
    let mut connect: Option<String> = None;
    let mut watch = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connect" => {
                connect = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| ParseError("--connect needs a value".into()))?,
                );
            }
            "--watch" if op == "submit" => watch = true,
            other if !other.starts_with('-') => positional.push(other.to_string()),
            other => return err(format!("unknown option '{other}'")),
        }
    }
    let Some(connect) = connect else {
        return err(format!(
            "{op} needs --connect <addr> (the daemon's --listen address)"
        ));
    };
    let one = |what: &str| -> Result<String, ParseError> {
        match positional.as_slice() {
            [only] => Ok(only.clone()),
            [] => Err(ParseError(format!("{op} needs a {what}"))),
            _ => Err(ParseError(format!("{op} takes exactly one {what}"))),
        }
    };
    let op = match op {
        "submit" => ClientOp::Submit {
            manifest: one("manifest file")?,
            watch,
        },
        "status" => match positional.as_slice() {
            [] => ClientOp::Status { campaign: None },
            [only] => ClientOp::Status {
                campaign: Some(only.clone()),
            },
            _ => return err("status takes at most one campaign id"),
        },
        "watch" => ClientOp::Watch {
            campaign: one("campaign id")?,
        },
        "cancel" => ClientOp::Cancel {
            campaign: one("campaign id")?,
        },
        "results" => ClientOp::Results {
            campaign: one("campaign id")?,
        },
        "shutdown" => {
            if !positional.is_empty() {
                return err("shutdown takes no arguments");
            }
            ClientOp::Shutdown
        }
        other => return err(format!("unknown client command '{other}'")),
    };
    Ok(ClientOpts { op, connect })
}

fn parse_worker_opts(args: &[String]) -> Result<WorkerOpts, ParseError> {
    let mut opts = WorkerOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--heartbeat-millis" => {
                let v = it
                    .next()
                    .ok_or_else(|| ParseError("--heartbeat-millis needs a value".into()))?;
                opts.heartbeat_millis = v.parse().map_err(|_| {
                    ParseError(format!("--heartbeat-millis needs a number, got '{v}'"))
                })?;
                if opts.heartbeat_millis == 0 {
                    return err("--heartbeat-millis must be positive");
                }
            }
            other => return err(format!("unknown option '{other}'")),
        }
    }
    Ok(opts)
}

/// Parses a full command line (without the program name).
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "list" => Ok(Command::List),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "check" => Ok(Command::Check(parse_run_opts(&args[1..])?)),
        "cover" => Ok(Command::Cover(parse_run_opts(&args[1..])?)),
        "truth" => Ok(Command::Truth(parse_run_opts(&args[1..])?)),
        "fuzz" => Ok(Command::Fuzz(parse_fuzz_opts(&args[1..])?)),
        "replay" => match args.get(1) {
            Some(file) if args.len() == 2 && !file.starts_with('-') => {
                Ok(Command::Replay(ReplayOpts { file: file.clone() }))
            }
            _ => err("replay needs exactly one corpus file argument"),
        },
        "serve" => Ok(Command::Serve(parse_serve_opts(&args[1..])?)),
        "daemon" => Ok(Command::Daemon(parse_daemon_opts(&args[1..])?)),
        "submit" | "status" | "watch" | "cancel" | "results" | "shutdown" => {
            Ok(Command::Client(parse_client_opts(cmd, &args[1..])?))
        }
        "worker" => Ok(Command::Worker(parse_worker_opts(&args[1..])?)),
        other => err(format!("unknown command '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_check_with_options() {
        let cmd = parse(&s(&[
            "check",
            "wsq",
            "--bug",
            "bug2",
            "--strategy",
            "cb:2",
            "--max-executions",
            "100",
        ]))
        .unwrap();
        let Command::Check(o) = cmd else {
            panic!("expected check")
        };
        assert_eq!(o.workload, "wsq");
        assert_eq!(o.bug.as_deref(), Some("bug2"));
        assert_eq!(o.strategy, StrategyOpt::Cb(2));
        assert_eq!(o.max_executions, Some(100));
        assert!(o.fair);
    }

    #[test]
    fn parses_unfair_baseline() {
        let cmd = parse(&s(&["cover", "philosophers", "--unfair", "--db", "30"])).unwrap();
        let Command::Cover(o) = cmd else {
            panic!("expected cover")
        };
        assert!(!o.fair);
        assert_eq!(o.db, Some(30));
    }

    #[test]
    fn rejects_unknown_strategy() {
        assert!(parse(&s(&["check", "wsq", "--strategy", "bfs"])).is_err());
    }

    #[test]
    fn rejects_missing_workload() {
        assert!(parse(&s(&["check"])).is_err());
        assert!(parse(&s(&["check", "--bug", "x"])).is_err());
    }

    #[test]
    fn empty_args_show_help() {
        assert!(matches!(parse(&[]).unwrap(), Command::Help));
    }

    #[test]
    fn parses_jobs() {
        let cmd = parse(&s(&["check", "wsq", "--jobs", "4"])).unwrap();
        let Command::Check(o) = cmd else { panic!() };
        assert_eq!(o.jobs, 4);
        assert!(parse(&s(&["check", "wsq", "--jobs", "0"])).is_err());
        assert!(parse(&s(&["check", "wsq", "--jobs"])).is_err());
    }

    #[test]
    fn parses_fuzz_options() {
        let cmd = parse(&s(&[
            "fuzz",
            "--systems",
            "500",
            "--seed",
            "7",
            "--jobs",
            "4",
            "--inject",
            "safety,livelock",
            "--corpus-dir",
            "out",
        ]))
        .unwrap();
        let Command::Fuzz(o) = cmd else {
            panic!("expected fuzz")
        };
        assert_eq!(o.systems, 500);
        assert_eq!(o.seed, 7);
        assert_eq!(o.jobs, 4);
        assert!(o.inject_safety);
        assert!(!o.inject_deadlock);
        assert!(o.inject_livelock);
        assert_eq!(o.corpus_dir, "out");
    }

    #[test]
    fn fuzz_rejects_bad_values() {
        assert!(parse(&s(&["fuzz", "--inject", "hang"])).is_err());
        assert!(parse(&s(&["fuzz", "--yield-percent", "120"])).is_err());
        assert!(parse(&s(&["fuzz", "--max-threads", "1"])).is_err());
        assert!(parse(&s(&["fuzz", "--jobs", "0"])).is_err());
    }

    #[test]
    fn parses_replay() {
        let cmd = parse(&s(&["replay", "corpus/safety-3.json"])).unwrap();
        let Command::Replay(o) = cmd else {
            panic!("expected replay")
        };
        assert_eq!(o.file, "corpus/safety-3.json");
        assert!(parse(&s(&["replay"])).is_err());
        assert!(parse(&s(&["replay", "a", "b"])).is_err());
    }

    #[test]
    fn parses_checkpoint_and_resume() {
        let cmd = parse(&s(&[
            "check",
            "wsq",
            "--checkpoint",
            "run.journal",
            "--checkpoint-every",
            "50",
        ]))
        .unwrap();
        let Command::Check(o) = cmd else { panic!() };
        assert_eq!(o.checkpoint.as_deref(), Some("run.journal"));
        assert_eq!(o.checkpoint_every, 50);

        let cmd = parse(&s(&["check", "wsq", "--resume", "run.journal"])).unwrap();
        let Command::Check(o) = cmd else { panic!() };
        assert_eq!(o.resume.as_deref(), Some("run.journal"));

        assert!(parse(&s(&["check", "wsq", "--checkpoint-every", "0"])).is_err());
        // the journal records one sequential frontier
        assert!(parse(&s(&[
            "check",
            "wsq",
            "--jobs",
            "2",
            "--checkpoint",
            "x.journal"
        ]))
        .is_err());
        assert!(parse(&s(&[
            "check",
            "wsq",
            "--jobs",
            "2",
            "--resume",
            "x.journal"
        ]))
        .is_err());
    }

    #[test]
    fn parses_fuzz_panic_injection_and_journal() {
        let cmd = parse(&s(&[
            "fuzz",
            "--inject",
            "panic",
            "--checkpoint",
            "fuzz.journal",
            "--resume",
            "fuzz.journal",
        ]))
        .unwrap();
        let Command::Fuzz(o) = cmd else { panic!() };
        assert!(o.inject_panic);
        assert!(!o.inject_safety);
        assert_eq!(o.checkpoint.as_deref(), Some("fuzz.journal"));
        assert_eq!(o.resume.as_deref(), Some("fuzz.journal"));
    }

    #[test]
    fn parses_validate_effects() {
        let cmd = parse(&s(&["check", "counter", "--validate-effects"])).unwrap();
        let Command::Check(o) = cmd else { panic!() };
        assert!(o.validate_effects);
        let cmd = parse(&s(&["cover", "counter"])).unwrap();
        let Command::Cover(o) = cmd else { panic!() };
        assert!(!o.validate_effects);
    }

    #[test]
    fn parses_reduce_modes() {
        let cmd = parse(&s(&["check", "wsq", "--reduce", "sleep-sets"])).unwrap();
        let Command::Check(o) = cmd else { panic!() };
        assert!(o.reduce);
        let cmd = parse(&s(&["check", "wsq", "--reduce", "none"])).unwrap();
        let Command::Check(o) = cmd else { panic!() };
        assert!(!o.reduce);
        let cmd = parse(&s(&["fuzz", "--reduce", "sleep-sets"])).unwrap();
        let Command::Fuzz(o) = cmd else { panic!() };
        assert!(o.reduce);
        assert!(parse(&s(&["check", "wsq", "--reduce", "dpor"])).is_err());
    }

    #[test]
    fn reduce_rejects_incompatible_combinations() {
        // A reduced search is not snapshot-resumable.
        assert!(parse(&s(&[
            "check",
            "wsq",
            "--reduce",
            "sleep-sets",
            "--checkpoint",
            "x.journal"
        ]))
        .is_err());
        assert!(parse(&s(&[
            "check",
            "wsq",
            "--reduce",
            "sleep-sets",
            "--resume",
            "x.journal"
        ]))
        .is_err());
        // The horizon's random tail defeats sibling bookkeeping.
        assert!(parse(&s(&["check", "wsq", "--reduce", "sleep-sets", "--db", "4"])).is_err());
        // Random walk has no backtracking tree to prune.
        assert!(parse(&s(&[
            "check",
            "wsq",
            "--reduce",
            "sleep-sets",
            "--strategy",
            "random:1"
        ]))
        .is_err());
        // Systematic strategies compose.
        assert!(parse(&s(&[
            "check",
            "wsq",
            "--reduce",
            "sleep-sets",
            "--strategy",
            "cb:2"
        ]))
        .is_ok());
    }

    #[test]
    fn parses_serve_options() {
        let cmd = parse(&s(&[
            "serve",
            "campaign.json",
            "--workers",
            "4",
            "--checkpoint",
            "verdicts.json",
            "--status-file",
            "status.json",
            "--heartbeat-timeout",
            "2.5",
            "--max-attempts",
            "5",
            "--jitter-seed",
            "9",
        ]))
        .unwrap();
        let Command::Serve(o) = cmd else {
            panic!("expected serve")
        };
        assert_eq!(o.manifest, "campaign.json");
        assert_eq!(o.workers, 4);
        assert_eq!(o.checkpoint.as_deref(), Some("verdicts.json"));
        assert_eq!(o.status_file.as_deref(), Some("status.json"));
        assert_eq!(o.heartbeat_timeout, Duration::from_secs_f64(2.5));
        assert_eq!(o.max_attempts, 5);
        assert_eq!(o.jitter_seed, 9);

        let cmd = parse(&s(&["serve", "c.json", "--resume", "verdicts.json"])).unwrap();
        let Command::Serve(o) = cmd else { panic!() };
        assert_eq!(o.resume.as_deref(), Some("verdicts.json"));
        assert_eq!(o.workers, 2, "default worker count");

        assert!(parse(&s(&["serve"])).is_err(), "manifest is required");
        assert!(parse(&s(&["serve", "--workers", "2"])).is_err());
        assert!(parse(&s(&["serve", "c.json", "--workers", "0"])).is_err());
        assert!(parse(&s(&["serve", "c.json", "--max-attempts", "0"])).is_err());
        assert!(parse(&s(&["serve", "c.json", "--heartbeat-timeout", "0"])).is_err());
    }

    #[test]
    fn parses_hidden_worker_command() {
        let cmd = parse(&s(&["worker"])).unwrap();
        let Command::Worker(o) = cmd else {
            panic!("expected worker")
        };
        assert_eq!(o.heartbeat_millis, WorkerOpts::default().heartbeat_millis);
        let cmd = parse(&s(&["worker", "--heartbeat-millis", "50"])).unwrap();
        let Command::Worker(o) = cmd else { panic!() };
        assert_eq!(o.heartbeat_millis, 50);
        assert!(parse(&s(&["worker", "--heartbeat-millis", "0"])).is_err());
        assert!(parse(&s(&["worker", "--wat"])).is_err());
        // Hidden means hidden: the help text never mentions it.
        assert!(!USAGE.contains("fair-chess worker"));
    }

    #[test]
    fn usage_documents_serve() {
        assert!(USAGE.contains("fair-chess serve"));
        for flag in [
            "--workers",
            "--status-file",
            "--heartbeat-timeout",
            "--max-attempts",
            "--jitter-seed",
        ] {
            assert!(USAGE.contains(flag), "{flag} missing from USAGE");
        }
    }

    #[test]
    fn usage_documents_the_exit_code_contract() {
        for code in 0..=7 {
            assert!(
                USAGE.contains(&format!("\n    {code}  ")),
                "exit code {code} missing from USAGE"
            );
        }
    }

    #[test]
    fn parses_memory_models() {
        let cmd = parse(&s(&["check", "sb", "--memory", "tso"])).unwrap();
        let Command::Check(o) = cmd else { panic!() };
        assert_eq!(o.memory, MemoryModel::Tso);

        let cmd = parse(&s(&["cover", "dekker", "--memory", "pso"])).unwrap();
        let Command::Cover(o) = cmd else { panic!() };
        assert_eq!(o.memory, MemoryModel::Pso);

        // sc is the default and is accepted explicitly.
        let cmd = parse(&s(&["check", "sb"])).unwrap();
        let Command::Check(o) = cmd else { panic!() };
        assert_eq!(o.memory, MemoryModel::Sc);
        assert!(parse(&s(&["check", "sb", "--memory", "sc"])).is_ok());

        let cmd = parse(&s(&["fuzz", "--memory", "tso"])).unwrap();
        let Command::Fuzz(o) = cmd else { panic!() };
        assert_eq!(o.memory, MemoryModel::Tso);

        let e = parse(&s(&["check", "sb", "--memory", "arm"])).unwrap_err();
        assert!(e.0.contains("unknown memory model"), "{}", e.0);
        assert!(parse(&s(&["fuzz", "--memory"])).is_err());
    }

    #[test]
    fn parses_shard() {
        let cmd = parse(&s(&["check", "counter", "--shard", "1/4"])).unwrap();
        let Command::Check(o) = cmd else { panic!() };
        assert_eq!(o.shard, Some((1, 4)));
        // Shape and range errors.
        assert!(parse(&s(&["check", "counter", "--shard", "3"])).is_err());
        assert!(parse(&s(&["check", "counter", "--shard", "4/4"])).is_err());
        assert!(parse(&s(&["check", "counter", "--shard", "0/0"])).is_err());
        // Incompatible combinations: the shard merge is only defined for
        // plain dfs and seed-split random walks.
        assert!(parse(&s(&["check", "counter", "--shard", "0/2", "--jobs", "2"])).is_err());
        assert!(parse(&s(&["check", "counter", "--shard", "0/2", "--db", "4"])).is_err());
        assert!(parse(&s(&[
            "check",
            "counter",
            "--shard",
            "0/2",
            "--reduce",
            "sleep-sets"
        ]))
        .is_err());
        assert!(parse(&s(&[
            "check",
            "counter",
            "--shard",
            "0/2",
            "--strategy",
            "cb:2"
        ]))
        .is_err());
        assert!(parse(&s(&[
            "check",
            "counter",
            "--shard",
            "0/2",
            "--checkpoint",
            "x.journal"
        ]))
        .is_err());
        assert!(parse(&s(&[
            "check",
            "counter",
            "--shard",
            "0/2",
            "--strategy",
            "random:7"
        ]))
        .is_ok());
    }

    #[test]
    fn parses_daemon_options() {
        let cmd = parse(&s(&[
            "daemon",
            "--listen",
            "unix:/tmp/d.sock",
            "--store",
            "store-dir",
            "--workers",
            "4",
            "--heartbeat-timeout",
            "2.5",
            "--max-attempts",
            "5",
            "--jitter-seed",
            "9",
        ]))
        .unwrap();
        let Command::Daemon(o) = cmd else {
            panic!("expected daemon")
        };
        assert_eq!(o.listen, "unix:/tmp/d.sock");
        assert_eq!(o.store, "store-dir");
        assert_eq!(o.workers, 4);
        assert_eq!(o.heartbeat_timeout, Duration::from_secs_f64(2.5));
        assert_eq!(o.max_attempts, 5);
        assert_eq!(o.jitter_seed, 9);
        // Both endpoints are required.
        assert!(parse(&s(&["daemon", "--store", "x"])).is_err());
        assert!(parse(&s(&["daemon", "--listen", "tcp:127.0.0.1:1"])).is_err());
        assert!(parse(&s(&[
            "daemon",
            "--listen",
            "a",
            "--store",
            "b",
            "--workers",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn parses_client_commands() {
        let cmd = parse(&s(&[
            "submit",
            "campaign.json",
            "--connect",
            "unix:/tmp/d.sock",
            "--watch",
        ]))
        .unwrap();
        let Command::Client(o) = cmd else {
            panic!("expected client")
        };
        assert_eq!(o.connect, "unix:/tmp/d.sock");
        assert_eq!(
            o.op,
            ClientOp::Submit {
                manifest: "campaign.json".to_string(),
                watch: true
            }
        );

        let cmd = parse(&s(&["status", "--connect", "tcp:127.0.0.1:7979"])).unwrap();
        let Command::Client(o) = cmd else { panic!() };
        assert_eq!(o.op, ClientOp::Status { campaign: None });

        let cmd = parse(&s(&["results", "00ff00ff00ff00ff", "--connect", "a:1"])).unwrap();
        let Command::Client(o) = cmd else { panic!() };
        assert_eq!(
            o.op,
            ClientOp::Results {
                campaign: "00ff00ff00ff00ff".to_string()
            }
        );

        let cmd = parse(&s(&["shutdown", "--connect", "a:1"])).unwrap();
        let Command::Client(o) = cmd else { panic!() };
        assert_eq!(o.op, ClientOp::Shutdown);

        // --connect is mandatory, campaigns are one-per-command, and
        // --watch belongs to submit alone.
        assert!(parse(&s(&["submit", "campaign.json"])).is_err());
        assert!(parse(&s(&["watch", "--connect", "a:1"])).is_err());
        assert!(parse(&s(&["cancel", "x", "y", "--connect", "a:1"])).is_err());
        assert!(parse(&s(&["shutdown", "x", "--connect", "a:1"])).is_err());
        assert!(parse(&s(&["status", "x", "--watch", "--connect", "a:1"])).is_err());
    }

    #[test]
    fn usage_documents_the_daemon() {
        for needle in [
            "fair-chess daemon",
            "fair-chess submit",
            "fair-chess watch",
            "fair-chess results",
            "--listen",
            "--store",
            "--connect",
            "--shard",
        ] {
            assert!(USAGE.contains(needle), "{needle} missing from USAGE");
        }
    }

    #[test]
    fn random_strategy_seed() {
        let cmd = parse(&s(&["check", "miniboot", "--strategy", "random:42"])).unwrap();
        let Command::Check(o) = cmd else { panic!() };
        assert_eq!(o.strategy, StrategyOpt::Random(42));
    }
}
