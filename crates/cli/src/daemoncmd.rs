//! The `daemon` subcommand and its client verbs.
//!
//! `fair-chess daemon --listen <addr> --store <dir>` runs the
//! long-running campaign daemon from [`chess_server`]: it accepts
//! line-delimited JSON requests over a unix or TCP socket, drives each
//! submitted manifest through the same worker pool as `serve`, and
//! journals every verdict into a content-addressed store so a killed
//! daemon resumes its in-flight campaigns on restart.
//!
//! The client verbs — `submit`, `status`, `watch`, `cancel`,
//! `results`, `shutdown` — speak that protocol so campaigns can be
//! managed from scripts without hand-writing socket code. `submit
//! --watch` stays attached and streams verdicts as they land, exiting
//! with the campaign's report code; `results` prints the finished
//! report and exits with its code, mirroring what a one-shot `serve`
//! of the same manifest would have printed and returned.

use std::process::ExitCode;
use std::sync::Arc;

use chess_bench::Json;
use chess_core::procpool::PoolConfig;
use chess_core::Progress;
use chess_server::{expect_ok, parse_digest, run_daemon, Client, DaemonConfig, Listen, Request};

use crate::opts::{ClientOp, ClientOpts, DaemonOpts};
use crate::{exitcode, workercmd};

/// Entry point for `fair-chess daemon`.
pub fn do_daemon(o: &DaemonOpts) -> ExitCode {
    match daemon(o) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(exitcode::USAGE)
        }
    }
}

fn daemon(o: &DaemonOpts) -> Result<(), String> {
    let listen = Listen::parse(&o.listen)?;
    let worker_program = crate::servecmd::worker_binary()?;
    // Same heartbeat contract as `serve`: workers beat at a fraction
    // of the watchdog deadline so a live job always wins.
    let hb_ms = (o.heartbeat_timeout.as_millis() as u64 / 5).clamp(10, 500);
    run_daemon(DaemonConfig {
        listen,
        store_dir: std::path::PathBuf::from(&o.store),
        pool: PoolConfig {
            workers: o.workers,
            heartbeat_timeout: o.heartbeat_timeout,
            max_attempts: o.max_attempts,
            jitter_seed: o.jitter_seed,
            ..PoolConfig::default()
        },
        worker_program,
        worker_args: vec![
            "worker".to_string(),
            "--heartbeat-millis".to_string(),
            hb_ms.to_string(),
        ],
        validator: workercmd::validate_job,
        fallback: Some(fallback_run),
    })
}

/// Degraded in-process runner for when no worker can be spawned —
/// the daemon's analogue of `serve`'s leftover loop.
fn fallback_run(payload: &str) -> Result<String, String> {
    let progress = Arc::new(Progress::default());
    workercmd::run_job(payload, &progress).map(|r| r.to_payload())
}

/// Entry point for the client verbs (`submit`, `status`, ...).
pub fn do_client(o: &ClientOpts) -> ExitCode {
    match client(o) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(exitcode::USAGE)
        }
    }
}

fn client(o: &ClientOpts) -> Result<u8, String> {
    let addr = Listen::parse(&o.connect)?;
    let mut client = Client::connect(&addr)?;
    match &o.op {
        ClientOp::Submit { manifest, watch } => {
            let text = std::fs::read_to_string(manifest)
                .map_err(|e| format!("cannot read {manifest}: {e}"))?;
            let doc = Json::parse(&text).map_err(|e| format!("{manifest}: {e}"))?;
            let ack = expect_ok(client.request(&Request::Submit { manifest: doc })?)?;
            let digest = ack
                .get("campaign")
                .and_then(Json::as_str)
                .ok_or("malformed submit ack: no 'campaign'")?
                .to_string();
            let cached = ack.get("cached").and_then(Json::as_bool).unwrap_or(false);
            let state = ack.get("state").and_then(Json::as_str).unwrap_or("?");
            if cached {
                println!("campaign {digest}: cached ({state})");
            } else {
                let jobs = ack.get("jobs").and_then(Json::as_u64).unwrap_or(0);
                println!("campaign {digest}: queued ({jobs} jobs)");
            }
            if *watch {
                let campaign = parse_digest(&digest)?;
                expect_ok(client.request(&Request::Watch { campaign })?)?;
                return stream_events(&mut client);
            }
            // A cached, finished campaign answers with its code so a
            // fire-and-forget resubmit still reports the verdict.
            match ack.get("code").and_then(Json::as_u64) {
                Some(code) => Ok(code as u8),
                None => Ok(0),
            }
        }
        ClientOp::Status { campaign } => {
            let campaign = match campaign {
                Some(text) => Some(parse_digest(text)?),
                None => None,
            };
            let doc = expect_ok(client.request(&Request::Status { campaign })?)?;
            println!("{}", doc.to_string_pretty());
            Ok(0)
        }
        ClientOp::Watch { campaign } => {
            let campaign = parse_digest(campaign)?;
            expect_ok(client.request(&Request::Watch { campaign })?)?;
            stream_events(&mut client)
        }
        ClientOp::Cancel { campaign } => {
            let digest = parse_digest(campaign)?;
            let doc = expect_ok(client.request(&Request::Cancel { campaign: digest })?)?;
            let state = doc.get("state").and_then(Json::as_str).unwrap_or("?");
            println!("campaign {campaign}: {state}");
            Ok(0)
        }
        ClientOp::Results { campaign } => {
            let digest = parse_digest(campaign)?;
            let doc = expect_ok(client.request(&Request::Results { campaign: digest })?)?;
            let text = doc
                .get("report")
                .and_then(Json::as_str)
                .ok_or("malformed results response: no 'report'")?;
            print!("{text}");
            let code = doc
                .get("code")
                .and_then(Json::as_u64)
                .ok_or("malformed results response: no 'code'")?;
            Ok(code as u8)
        }
        ClientOp::Shutdown => {
            expect_ok(client.request(&Request::Shutdown)?)?;
            println!("daemon shutting down");
            Ok(0)
        }
    }
}

/// Follows a `watch` stream to completion: verdicts go to stdout,
/// progress to stderr, and the `done` event decides the exit code.
fn stream_events(client: &mut Client) -> Result<u8, String> {
    loop {
        let Some(event) = client.read_event()? else {
            return Err("daemon closed the stream without a 'done' event".to_string());
        };
        match event.get("event").and_then(Json::as_str) {
            Some("verdict") => {
                let id = event.get("id").and_then(Json::as_str).unwrap_or("?");
                if event.get("quarantined").and_then(Json::as_bool) == Some(true) {
                    let attempts = event.get("attempts").and_then(Json::as_u64).unwrap_or(0);
                    println!("{id}: quarantined after {attempts} attempt(s)");
                } else {
                    let line = event.get("line").and_then(Json::as_str).unwrap_or("?");
                    println!("{id}: {line}");
                }
            }
            Some("status") => {
                let done = event.get("done").and_then(Json::as_u64).unwrap_or(0);
                let quarantined = event.get("quarantined").and_then(Json::as_u64).unwrap_or(0);
                let total = event.get("total").and_then(Json::as_u64).unwrap_or(0);
                eprintln!(
                    "progress: {}/{total} decided ({quarantined} quarantined)",
                    done + quarantined
                );
            }
            Some("done") => {
                if event.get("cancelled").and_then(Json::as_bool) == Some(true) {
                    eprintln!("campaign cancelled");
                }
                if let Some(err) = event.get("error").and_then(Json::as_str) {
                    eprintln!("error: {err}");
                }
                let code = event
                    .get("code")
                    .and_then(Json::as_u64)
                    .ok_or("malformed 'done' event: no 'code'")?;
                return Ok(code as u8);
            }
            Some("detached") => {
                eprintln!("detached: daemon shutting down; campaign resumes on restart");
                return Ok(exitcode::INTERRUPTED);
            }
            other => {
                eprintln!("warning: unknown event {other:?} ignored");
            }
        }
    }
}
