//! `fair-chess` — command-line front end for the fair stateless model
//! checker.
//!
//! ```text
//! fair-chess list
//! fair-chess check <workload> [--bug <bug>] [options]
//! fair-chess cover <workload> [options]
//! fair-chess truth <workload> [--bug <bug>]
//! fair-chess fuzz [--systems <N>] [--seed <S>] [--jobs <J>]
//! fair-chess replay <corpus-file>
//! fair-chess serve <manifest.json> [--workers <N>] [options]
//! fair-chess daemon --listen <addr> --store <dir> [options]
//! fair-chess submit <manifest.json> --connect <addr> [--watch]
//! fair-chess status|watch|cancel|results|shutdown ... --connect <addr>
//! ```
//!
//! Run `fair-chess help` for the full option list.

mod daemoncmd;
mod exitcode;
mod fuzzcmd;
mod opts;
mod registry;
mod run;
mod servecmd;
mod signal;
mod workercmd;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match opts::parse(&args) {
        Ok(cmd) => run::execute(cmd),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", opts::USAGE);
            ExitCode::from(2)
        }
    }
}
