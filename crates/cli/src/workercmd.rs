//! The hidden `worker` subcommand: the process a `serve` supervisor
//! re-execs for every pool slot.
//!
//! A worker speaks the `chess_core::procpool` line protocol over
//! stdin/stdout and runs one job at a time through the same workload
//! table as `check` (via [`crate::run::run_check_job`]) or a small
//! in-process differential-fuzz sweep. Heartbeats are emitted only
//! while the job's [`Progress`] counters advance, so a genuinely hung
//! search stalls the heartbeat and gets this process killed by the
//! supervisor's watchdog — the intended failure mode.
//!
//! # Job payloads
//!
//! A job is one JSON object from the campaign manifest's `jobs` array:
//!
//! ```json
//! {"id": "w1", "kind": "check", "workload": "wsq", "bug": "lost-tail",
//!  "strategy": "cb:2", "max_executions": 5000}
//! {"id": "f1", "kind": "fuzz", "seed": 5, "systems": 8,
//!  "inject": ["deadlock"]}
//! ```
//!
//! The result payload is `{"code": <0-7>, "line": "<summary>"}` —
//! plus, for check jobs, the full `report` (wall clock zeroed) so the
//! campaign layer can merge shard results. `line` carries no
//! wall-clock field — the supervisor's final report is assembled from
//! these lines, and their determinism is what makes a resumed campaign
//! reprint byte-for-byte. A check job may carry `shard_index`/
//! `shard_of` (written by the campaign layer's expansion of a
//! `"shards": K` job) to run one slice of a dfs or random search.
//!
//! # Chaos injection
//!
//! Setting `FAIR_CHESS_CHAOS="abort:P,hang:P,garbage:P,seed:N"` makes
//! the worker misbehave at job start with the given probabilities:
//! `abort` calls `std::process::abort()`, `hang` sleeps forever without
//! ticking progress (exercising the watchdog), and `garbage` emits an
//! unparsable protocol line. Each decision is drawn from a hash of
//! (seed, job id, attempt), so retries re-roll deterministically and a
//! re-run (or resumed) campaign injects the identical fault sequence.

use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use chess_bench::Json;
use chess_core::procpool::worker_main;
use chess_core::{derive_seed, generate_system, FuzzConfig, Progress};
use chess_state::{differential_check_with_progress, OracleLimits, SystemOutcome};

use crate::exitcode;
use crate::opts::{self, RunOpts, WorkerOpts};
use crate::run::{run_check_job, JobRunResult};

/// Runs the worker protocol loop until the supervisor shuts us down or
/// closes stdin.
pub fn do_worker(o: &WorkerOpts) -> ExitCode {
    let chaos = ChaosConfig::from_env();
    worker_main(
        std::io::stdin().lock(),
        std::io::stdout(),
        Duration::from_millis(o.heartbeat_millis),
        move |id, attempt, payload, progress| {
            chaos.inject(id, attempt);
            Ok(run_job(payload, progress)?.to_payload())
        },
    );
    ExitCode::SUCCESS
}

/// Parses and runs one job payload. Also the degraded in-process path:
/// when `serve` cannot spawn any worker it calls this directly.
pub fn run_job(payload: &str, progress: &Arc<Progress>) -> Result<JobRunResult, String> {
    let json = Json::parse(payload).map_err(|e| format!("job payload: {e}"))?;
    match job_kind(&json) {
        "check" => run_check_job(&check_opts_from_json(&json)?, progress),
        "fuzz" => run_fuzz_job(&json, progress),
        other => Err(format!("unknown job kind '{other}'")),
    }
}

/// Structural validation of a manifest job, without running it: the
/// supervisor calls this at load time so a malformed manifest fails
/// fast (exit 2), before any worker is spawned. Semantic problems a
/// worker discovers later (an unknown workload name, say) surface as
/// handler errors and quarantine the job with that evidence instead.
pub fn validate_job(json: &Json) -> Result<(), String> {
    match job_kind(json) {
        "check" => check_opts_from_json(json).map(|_| ()),
        "fuzz" => Ok(()),
        other => Err(format!("unknown job kind '{other}'")),
    }
}

fn job_kind(json: &Json) -> &str {
    json.get("kind").and_then(Json::as_str).unwrap_or("check")
}

/// Builds the `check`-equivalent options from a check job object. Only
/// single-process knobs are honored: parallelism comes from the pool,
/// and journaling belongs to the supervisor, so `jobs`, `checkpoint`,
/// and `resume` stay at their defaults.
fn check_opts_from_json(json: &Json) -> Result<RunOpts, String> {
    let mut o = RunOpts {
        workload: json
            .get("workload")
            .and_then(Json::as_str)
            .ok_or("check job has no 'workload'")?
            .to_string(),
        bug: json.get("bug").and_then(Json::as_str).map(str::to_string),
        trace: false,
        ..RunOpts::default()
    };
    if let Some(m) = json.get("memory").and_then(Json::as_str) {
        o.memory = m.parse()?;
    }
    if let Some(s) = json.get("strategy").and_then(Json::as_str) {
        o.strategy = opts::parse_strategy(s).map_err(|e| e.0)?;
    }
    if let Some(r) = json.get("reduce").and_then(Json::as_bool) {
        o.reduce = r;
    }
    if let Some(v) = json.get("validate_effects").and_then(Json::as_bool) {
        o.validate_effects = v;
    }
    if let Some(f) = json.get("fair").and_then(Json::as_bool) {
        o.fair = f;
    }
    if let Some(k) = json.get("k").and_then(Json::as_u64) {
        o.k = k;
    }
    if let Some(d) = json.get("depth_bound").and_then(Json::as_u64) {
        o.depth_bound = d as usize;
    }
    if let Some(n) = json.get("max_executions").and_then(Json::as_u64) {
        o.max_executions = Some(n);
    }
    if let Some(ms) = json.get("time_budget_ms").and_then(Json::as_u64) {
        o.time_budget = Some(Duration::from_millis(ms));
    }
    // shard_index/shard_of are what the campaign layer's expansion of a
    // `"shards": K` job writes into each shard payload.
    match (
        json.get("shard_index").and_then(Json::as_u64),
        json.get("shard_of").and_then(Json::as_u64),
    ) {
        (None, None) => {}
        (Some(index), Some(of)) if of >= 1 && index < of => {
            o.shard = Some((index as usize, of as usize));
        }
        _ => {
            return Err(
                "shard_index/shard_of must appear together with 0 <= index < of".to_string(),
            )
        }
    }
    if o.shard.is_some_and(|(_, of)| of > 1) {
        // Mirror the --shard flag's compatibility rules for hand-built
        // payloads that bypassed the manifest expander.
        if o.reduce {
            return Err("a reduced search cannot shard".to_string());
        }
        if matches!(o.strategy, opts::StrategyOpt::Cb(_)) {
            return Err("sharding needs strategy dfs or random:<seed>".to_string());
        }
    }
    Ok(o)
}

/// A small in-process differential-fuzz sweep: `systems` generated
/// systems checked against the stateful oracles, one progress tick per
/// system. The summary line is deterministic (counts only).
fn run_fuzz_job(json: &Json, progress: &Arc<Progress>) -> Result<JobRunResult, String> {
    let num = |key: &str, default: u64| json.get(key).and_then(Json::as_u64).unwrap_or(default);
    let systems = num("systems", 10);
    let base_seed = num("seed", 1);
    let limits = OracleLimits {
        max_states: num("max_states", 200_000) as usize,
        // The pool owns parallelism (and the cross-check's private
        // workers would not feed the heartbeat progress); keep each job
        // a single-threaded, fully progress-observed check.
        parallel_cross_check: false,
        ..OracleLimits::default()
    };
    let mut inject = [false; 4]; // safety, deadlock, livelock, panic
    if let Some(Json::Array(kinds)) = json.get("inject") {
        for kind in kinds {
            match kind.as_str() {
                Some("safety") => inject[0] = true,
                Some("deadlock") => inject[1] = true,
                Some("livelock") => inject[2] = true,
                Some("panic") => inject[3] = true,
                other => return Err(format!("fuzz job: unknown injection {other:?}")),
            }
        }
    }
    let (mut clean, mut buggy, mut skipped, mut discrepancies) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..systems {
        let seed = derive_seed(base_seed, i);
        let config = FuzzConfig {
            max_threads: num("max_threads", 3) as usize,
            max_ops: num("max_ops", 4) as usize,
            yield_percent: num("yield_percent", 60) as u32,
            inject_safety: inject[0],
            inject_deadlock: inject[1],
            inject_livelock: inject[2],
            inject_panic: inject[3],
            ..FuzzConfig::default().with_seed(seed)
        };
        let sys = generate_system(&config);
        let verdict = differential_check_with_progress(|| sys.clone(), &limits, progress);
        match &verdict.outcome {
            SystemOutcome::Clean => clean += 1,
            SystemOutcome::Skipped(_) => skipped += 1,
            SystemOutcome::Buggy { .. } => buggy += 1,
        }
        discrepancies += verdict.discrepancies.len() as u64;
        progress.executions.fetch_add(1, Ordering::Relaxed);
    }
    let code = if discrepancies > 0 {
        exitcode::SAFETY_VIOLATION
    } else {
        exitcode::CLEAN
    };
    Ok(JobRunResult {
        code,
        line: format!(
            "fuzz: {systems} systems (base seed {base_seed}) — {clean} clean, {buggy} buggy, \
             {skipped} skipped, {discrepancies} discrepancies"
        ),
        // A fuzz sweep has no search report to merge; only check jobs
        // shard.
        report: None,
    })
}

// ---------------------------------------------------------------------
// Chaos injection
// ---------------------------------------------------------------------

/// Fault injection knobs parsed from `FAIR_CHESS_CHAOS`. All-zero (the
/// default) injects nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct ChaosConfig {
    abort: f64,
    hang: f64,
    garbage: f64,
    seed: u64,
}

impl ChaosConfig {
    fn from_env() -> ChaosConfig {
        let Ok(spec) = std::env::var("FAIR_CHESS_CHAOS") else {
            return ChaosConfig::default();
        };
        match ChaosConfig::parse(&spec) {
            Ok(c) => c,
            Err(e) => {
                // A worker must never die over a bad knob: report and
                // run un-sabotaged.
                eprintln!("worker: ignoring FAIR_CHESS_CHAOS ({e})");
                ChaosConfig::default()
            }
        }
    }

    fn parse(spec: &str) -> Result<ChaosConfig, String> {
        let mut c = ChaosConfig::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once(':')
                .ok_or_else(|| format!("expected key:value, got '{part}'"))?;
            let p = || -> Result<f64, String> {
                let p: f64 = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad probability '{value}'"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability '{value}' outside 0..=1"));
                }
                Ok(p)
            };
            match key.trim() {
                "abort" => c.abort = p()?,
                "hang" => c.hang = p()?,
                "garbage" => c.garbage = p()?,
                "seed" => {
                    c.seed = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad seed '{value}'"))?;
                }
                other => return Err(format!("unknown chaos knob '{other}'")),
            }
        }
        Ok(c)
    }

    /// Rolls the dice for (job, attempt) and misbehaves accordingly.
    /// Deterministic: the same (seed, id, attempt) always rolls the
    /// same way, so a resumed campaign replays the original faults.
    fn inject(&self, id: &str, attempt: u32) {
        if self.abort == 0.0 && self.hang == 0.0 && self.garbage == 0.0 {
            return;
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        for b in id.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h = (h ^ u64::from(attempt)).wrapping_mul(0x0000_0100_0000_01b3);
        let mut roll = move |p: f64| {
            // splitmix64 step per roll: three independent decisions
            // from one hash without a full RNG.
            h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            ((z % 1_000_000) as f64) < p * 1_000_000.0
        };
        if roll(self.abort) {
            eprintln!("worker: chaos abort (job {id}, attempt {attempt})");
            std::process::abort();
        }
        if roll(self.hang) {
            eprintln!("worker: chaos hang (job {id}, attempt {attempt})");
            loop {
                // No progress ticks, so no heartbeats: the supervisor's
                // watchdog will SIGKILL this process.
                std::thread::sleep(Duration::from_secs(3600));
            }
        }
        if roll(self.garbage) {
            eprintln!("worker: chaos garbage (job {id}, attempt {attempt})");
            // Deliberately unparsable: the supervisor must treat the
            // stream as unframeable and kill us.
            println!("!!chaos garbage!!");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_spec_parses_and_rejects() {
        let c = ChaosConfig::parse("abort:0.5,hang:0.25,garbage:0,seed:42").unwrap();
        assert_eq!(
            c,
            ChaosConfig {
                abort: 0.5,
                hang: 0.25,
                garbage: 0.0,
                seed: 42
            }
        );
        assert!(ChaosConfig::parse("abort:1.5").is_err());
        assert!(ChaosConfig::parse("explode:0.5").is_err());
        assert!(ChaosConfig::parse("abort").is_err());
        assert_eq!(ChaosConfig::parse("").unwrap(), ChaosConfig::default());
    }

    #[test]
    fn job_result_round_trips() {
        let r = JobRunResult {
            code: 4,
            line: "deadlock: both forks held (execution 9) — 12 executions".to_string(),
            report: None,
        };
        let back = JobRunResult::from_payload(&r.to_payload()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn shard_fields_map_onto_run_opts() {
        let json = Json::parse(
            r#"{"kind": "check", "workload": "counter",
                "shard_index": 1, "shard_of": 3}"#,
        )
        .unwrap();
        let o = check_opts_from_json(&json).unwrap();
        assert_eq!(o.shard, Some((1, 3)));

        // Half a shard spec, an out-of-range index, and unshardable
        // strategies are all malformed payloads.
        for (bad, needle) in [
            (r#"{"workload": "counter", "shard_index": 0}"#, "together"),
            (
                r#"{"workload": "counter", "shard_index": 3, "shard_of": 3}"#,
                "together",
            ),
            (
                r#"{"workload": "counter", "shard_index": 0, "shard_of": 2,
                    "strategy": "cb:2"}"#,
                "dfs or random",
            ),
            (
                r#"{"workload": "counter", "shard_index": 0, "shard_of": 2,
                    "reduce": true}"#,
                "reduced",
            ),
        ] {
            let err = check_opts_from_json(&Json::parse(bad).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn sharded_check_jobs_cover_the_space_and_merge_to_the_sequential_report() {
        // Run the same job unsharded and as 2 shards; the merged shard
        // reports must equal the unsharded report byte-for-byte.
        let progress = Arc::new(Progress::default());
        let solo = run_job(
            r#"{"workload": "counter", "max_executions": 100000}"#,
            &progress,
        )
        .unwrap();
        let mut reports = Vec::new();
        for index in 0..2 {
            let r = run_job(
                &format!(
                    r#"{{"workload": "counter", "max_executions": 100000,
                        "shard_index": {index}, "shard_of": 2}}"#
                ),
                &progress,
            )
            .unwrap();
            reports.push(r.report.expect("check jobs carry reports"));
        }
        let merged = chess_core::merge_contiguous_shards(&reports);
        assert_eq!(merged, solo.report.unwrap());
        assert_eq!(merged.deterministic_line(), solo.line);
    }

    #[test]
    fn check_job_payload_maps_onto_run_opts() {
        let json = Json::parse(
            r#"{"kind": "check", "workload": "wsq", "bug": "lost-tail",
                "strategy": "cb:2", "max_executions": 100, "fair": true,
                "k": 2, "depth_bound": 500, "time_budget_ms": 250}"#,
        )
        .unwrap();
        let o = check_opts_from_json(&json).unwrap();
        assert_eq!(o.workload, "wsq");
        assert_eq!(o.bug.as_deref(), Some("lost-tail"));
        assert_eq!(o.strategy, crate::opts::StrategyOpt::Cb(2));
        assert_eq!(o.max_executions, Some(100));
        assert_eq!(o.k, 2);
        assert_eq!(o.depth_bound, 500);
        assert_eq!(o.time_budget, Some(Duration::from_millis(250)));
        assert!(!o.trace, "job runs never print traces");

        let bad = Json::parse(r#"{"kind": "check"}"#).unwrap();
        assert!(check_opts_from_json(&bad).is_err(), "workload is required");
    }

    #[test]
    fn run_job_reports_a_seeded_bug_deterministically() {
        let payload = r#"{"kind": "check", "workload": "counter", "bug": "racy",
                          "max_executions": 2000}"#;
        let progress = Arc::new(Progress::default());
        let first = run_job(payload, &progress).unwrap();
        assert_eq!(first.code, exitcode::SAFETY_VIOLATION);
        assert!(first.line.contains("safety violation"), "{}", first.line);
        assert!(
            progress.tick() > 0,
            "the job must publish progress for the heartbeat loop"
        );
        // Byte-identical across runs: no wall-clock field in the line.
        let second = run_job(payload, &Arc::new(Progress::default())).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn run_job_rejects_unknown_workloads_as_handler_errors() {
        let progress = Arc::new(Progress::default());
        let err = run_job(r#"{"workload": "nope"}"#, &progress).unwrap_err();
        assert!(err.contains("unknown workload"), "{err}");
        let err = run_job("not json at all", &progress).unwrap_err();
        assert!(err.contains("job payload"), "{err}");
    }
}
