//! Command execution: wiring the parsed options to the checker.

use std::cell::RefCell;
use std::path::Path;
use std::process::ExitCode;
use std::rc::Rc;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use chess_bench::{checkpoint_from_json, checkpoint_to_json, read_journal, JournalWriter, Json};
use chess_core::strategy::{ContextBounded, Dfs, RandomWalk, Strategy};
use chess_core::{
    BudgetKind, Config, Explorer, ParallelExplorer, Progress, SearchOutcome, SearchReport,
    SearchStats, ShardSpec,
};
use chess_kernel::{Capture, Kernel};
use chess_state::{CoverageTracker, StateGraph, StatefulError, StatefulLimits};
use chess_workloads::boundedbuffer::{bounded_buffer, BufferBug, BufferConfig};
use chess_workloads::bsp::{bsp, BspConfig};
use chess_workloads::channels::{fifo_pipeline, ChannelBug, FifoConfig};
use chess_workloads::litmus::{
    dekker, dekker_fenced, iriw, load_buffering, message_passing, store_buffering,
};
use chess_workloads::miniboot::{miniboot, BootConfig};
use chess_workloads::philosophers::{figure1, figure1_polite, philosophers, PhilosophersConfig};
use chess_workloads::promise::{figure8, promises, PromiseConfig};
use chess_workloads::rwcache::{rw_cache, RwCacheConfig};
use chess_workloads::simple::{deadlock_pair, locked_counter, racy_counter};
use chess_workloads::spinloop::{figure3, spinloop};
use chess_workloads::treiber::{treiber_stack, TreiberConfig};
use chess_workloads::workerpool::{figure7, worker_pool, PoolConfig};
use chess_workloads::wsq::{wsq, WsqBug, WsqConfig};

use crate::opts::{Command, RunOpts, StrategyOpt};
use crate::{exitcode, registry, signal};

/// Runs a parsed command.
pub fn execute(cmd: Command) -> ExitCode {
    match cmd {
        Command::Help => {
            println!("{}", crate::opts::USAGE);
            ExitCode::SUCCESS
        }
        Command::List => {
            print!("{}", registry::render_list());
            ExitCode::SUCCESS
        }
        Command::Check(o) => dispatch(&o, Mode::Check),
        Command::Cover(o) => dispatch(&o, Mode::Cover),
        Command::Truth(o) => dispatch(&o, Mode::Truth),
        Command::Fuzz(o) => crate::fuzzcmd::do_fuzz(&o),
        Command::Replay(o) => crate::fuzzcmd::do_replay(&o),
        Command::Serve(o) => crate::servecmd::do_serve(&o),
        Command::Daemon(o) => crate::daemoncmd::do_daemon(&o),
        Command::Client(o) => crate::daemoncmd::do_client(&o),
        Command::Worker(o) => crate::workercmd::do_worker(&o),
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Check,
    Cover,
    Truth,
}

/// One monomorphized action over a resolved workload factory.
///
/// The (workload, bug) table in [`with_workload`] is the single source
/// of truth for what the CLI can run; `check`/`cover`/`truth` and the
/// campaign worker's job runner all enter through it with a different
/// visitor, so a workload added to the table is immediately availble to
/// every front end.
pub trait WorkloadVisitor {
    /// What the action produces (an exit code, a job result, ...).
    type Out;
    /// Called with the resolved factory; monomorphized per state type.
    fn visit<S, F>(self, factory: F) -> Self::Out
    where
        S: Capture + Clone + 'static,
        F: Fn() -> Kernel<S> + Copy + Sync;
    /// Called when the options name no runnable workload; `message` is
    /// the human-readable reason.
    fn reject(self, message: String) -> Self::Out;
}

/// Resolves `o` against the workload table and hands the factory to
/// `visitor` (wrapped with `--validate-effects` when requested).
pub fn with_workload<V: WorkloadVisitor>(o: &RunOpts, visitor: V) -> V::Out {
    if !o.memory.is_sc()
        && registry::find(&o.workload).is_some()
        && !registry::supports_relaxed(&o.workload)
    {
        return visitor.reject(format!(
            "workload '{}' does not use atomics, so --memory {} would not change \
             anything; relaxed models are supported by the litmus workloads \
             (see `fair-chess list`)",
            o.workload, o.memory
        ));
    }
    let memory = o.memory;
    macro_rules! go {
        ($factory:expr) => {{
            let inner = $factory;
            let validate = o.validate_effects;
            let factory = move || {
                let mut k = inner();
                if validate {
                    k.set_validate_effects(true);
                }
                k
            };
            visitor.visit(factory)
        }};
    }
    match (o.workload.as_str(), o.bug.as_deref()) {
        ("counter", None) => go!(|| locked_counter(2)),
        ("counter", Some("racy")) => go!(|| racy_counter(2)),
        ("counter", Some("deadlock")) => go!(deadlock_pair),
        ("spinloop", None) => go!(figure3),
        ("spinloop", Some("no-yield")) => go!(|| spinloop(1, false)),
        ("philosophers", None) => go!(|| philosophers(PhilosophersConfig::table2(3))),
        ("philosophers", Some("figure1")) => go!(figure1),
        ("philosophers", Some("figure1-polite")) => go!(figure1_polite),
        ("wsq", None) => go!(|| wsq(WsqConfig::table2(2))),
        ("wsq", Some("unlocked-pop")) => {
            go!(|| wsq(WsqConfig::with_bug(WsqBug::UnlockedConflictPop)))
        }
        ("wsq", Some("unsync-steal")) => {
            go!(|| wsq(WsqConfig::with_bug(WsqBug::UnsynchronizedSteal)))
        }
        ("wsq", Some("lost-tail")) => go!(|| wsq(WsqConfig::with_bug(WsqBug::LostTailRestore))),
        ("promise", None) => go!(|| promises(PromiseConfig::correct())),
        ("promise", Some("stale-spin")) => go!(figure8),
        ("workerpool", None) => go!(|| worker_pool(PoolConfig::correct())),
        ("workerpool", Some("figure7")) => go!(figure7),
        ("channels", None) => go!(|| fifo_pipeline(FifoConfig::correct_fanin())),
        ("channels", Some("credit-leak")) => {
            go!(|| fifo_pipeline(FifoConfig::with_bug(ChannelBug::CreditLeak)))
        }
        ("channels", Some("racy-seq")) => {
            go!(|| fifo_pipeline(FifoConfig::with_bug(ChannelBug::RacySequence)))
        }
        ("channels", Some("eager-shutdown")) => {
            go!(|| fifo_pipeline(FifoConfig::with_bug(ChannelBug::EagerShutdown)))
        }
        ("channels", Some("draining-shutdown")) => {
            go!(|| fifo_pipeline(FifoConfig::with_bug(ChannelBug::DrainingShutdown)))
        }
        ("boundedbuffer", None) => go!(|| bounded_buffer(BufferConfig::correct())),
        ("boundedbuffer", Some("if-bug")) => {
            go!(|| bounded_buffer(BufferConfig::with_bug(BufferBug::IfInsteadOfWhile)))
        }
        ("boundedbuffer", Some("lost-wakeup")) => {
            go!(|| bounded_buffer(BufferConfig::with_bug(BufferBug::SharedCondvarSignal)))
        }
        ("rwcache", None) => go!(|| rw_cache(RwCacheConfig::correct())),
        ("rwcache", Some("upgrade-race")) => go!(|| rw_cache(RwCacheConfig::upgrade_race())),
        ("bsp", None) => go!(|| bsp(BspConfig::correct())),
        ("bsp", Some("elided-barrier")) => go!(|| bsp(BspConfig::elided_barrier())),
        ("treiber", None) => go!(|| treiber_stack(TreiberConfig::correct())),
        ("treiber", Some("aba")) => go!(|| treiber_stack(TreiberConfig::aba())),
        ("miniboot", None) => go!(|| miniboot(BootConfig::small())),
        ("miniboot-full", None) => go!(|| miniboot(BootConfig::full())),
        ("sb", None) => go!(move || store_buffering(memory)),
        ("dekker", None) => go!(move || dekker(memory)),
        ("dekker-fenced", None) => go!(move || dekker_fenced(memory)),
        ("mp", None) => go!(move || message_passing(memory)),
        ("lb", None) => go!(move || load_buffering(memory)),
        ("iriw", None) => go!(move || iriw(memory)),
        (w, b) => visitor.reject(match b {
            Some(b) => format!("unknown workload/bug combination '{w}' / '{b}'"),
            None => format!("unknown workload '{w}'"),
        }),
    }
}

/// The interactive visitor: `check`/`cover`/`truth` with their printing
/// and exit-code behavior.
struct ModeVisitor<'a> {
    o: &'a RunOpts,
    mode: Mode,
}

impl WorkloadVisitor for ModeVisitor<'_> {
    type Out = ExitCode;

    fn visit<S, F>(self, factory: F) -> ExitCode
    where
        S: Capture + Clone + 'static,
        F: Fn() -> Kernel<S> + Copy + Sync,
    {
        match self.mode {
            Mode::Check => do_check(factory, self.o),
            Mode::Cover => do_cover(factory, self.o),
            Mode::Truth => do_truth(factory),
        }
    }

    fn reject(self, message: String) -> ExitCode {
        eprintln!("error: {message}");
        if message.starts_with("unknown workload") {
            eprintln!("\n{}", registry::render_list());
        }
        ExitCode::from(2)
    }
}

/// Monomorphized dispatch from (workload, bug) strings to factories.
fn dispatch(o: &RunOpts, mode: Mode) -> ExitCode {
    with_workload(o, ModeVisitor { o, mode })
}

// ---------------------------------------------------------------------
// The campaign job runner
// ---------------------------------------------------------------------

/// What a campaign check job produces: the exit code the outcome maps
/// to under the documented 0–7 contract, a summary line with no
/// wall-clock field — two runs of the same job print identical lines,
/// which is what lets a resumed campaign reprint its report
/// byte-for-byte — and the full report, which is how shard jobs ship
/// mergeable results back to the campaign layer. The type lives in
/// `chess-server` so the daemon's merge machinery shares the codec.
pub use chess_server::JobResult as JobRunResult;

/// Maps a search outcome to the CLI's documented exit code.
pub fn outcome_code(outcome: &SearchOutcome) -> u8 {
    outcome.exit_code()
}

/// The report's display line minus the trailing wall-clock field (the
/// one part that differs between two runs of the same search).
fn deterministic_report_line(report: &SearchReport) -> String {
    report.deterministic_line()
}

/// The visitor behind [`run_check_job`]: a plain sequential search with
/// live progress publication and a structured result.
struct JobVisitor<'a> {
    o: &'a RunOpts,
    progress: &'a Arc<Progress>,
}

impl WorkloadVisitor for JobVisitor<'_> {
    type Out = Result<JobRunResult, String>;

    fn visit<S, F>(self, factory: F) -> Self::Out
    where
        S: Capture + Clone + 'static,
        F: Fn() -> Kernel<S> + Copy + Sync,
    {
        let o = self.o;
        let mut report = match o.shard {
            Some((index, of)) if of > 1 => {
                let parallel = ParallelExplorer::new(factory, build_config(o), 1)
                    .with_progress(Arc::clone(self.progress));
                match o.strategy {
                    StrategyOpt::Dfs => parallel.run_dfs_shard(ShardSpec { index, of }),
                    StrategyOpt::Random(seed) => {
                        parallel.run_random_shard(seed, ShardSpec { index, of })
                    }
                    StrategyOpt::Cb(_) => {
                        // The option parser and the manifest expander both
                        // reject this shape; a hand-built payload lands here.
                        return Err("sharding needs strategy dfs or random:<seed>".to_string());
                    }
                }
            }
            _ => Explorer::new(factory, build_strategy(o), build_config(o))
                .with_progress(Arc::clone(self.progress))
                .run(),
        };
        // Result payloads are journaled and compared byte-for-byte
        // across runs; the wall clock is the one nondeterministic stat.
        report.stats.wall = std::time::Duration::default();
        Ok(JobRunResult {
            code: outcome_code(&report.outcome),
            line: deterministic_report_line(&report),
            report: Some(report),
        })
    }

    fn reject(self, message: String) -> Self::Out {
        Err(message)
    }
}

/// Runs one campaign check job in this process, publishing progress to
/// `progress` so the worker protocol loop can heartbeat while the
/// search advances. Errors are option-level (unknown workload, bad
/// combination) — a found bug is a *successful* job whose result line
/// and code say so.
pub fn run_check_job(o: &RunOpts, progress: &Arc<Progress>) -> Result<JobRunResult, String> {
    with_workload(o, JobVisitor { o, progress })
}

fn build_strategy(o: &RunOpts) -> Box<dyn Strategy> {
    if o.reduce {
        // The parser rejects --reduce alongside --db and random walks.
        debug_assert!(o.db.is_none());
        return match o.strategy {
            StrategyOpt::Dfs => Box::new(Dfs::with_sleep_sets()),
            StrategyOpt::Cb(b) => Box::new(ContextBounded::with_sleep_sets(b)),
            StrategyOpt::Random(_) => unreachable!("rejected during option parsing"),
        };
    }
    match (o.strategy, o.db) {
        (StrategyOpt::Dfs, None) => Box::new(Dfs::new()),
        (StrategyOpt::Dfs, Some(db)) => Box::new(Dfs::with_horizon(db)),
        (StrategyOpt::Cb(b), None) => Box::new(ContextBounded::new(b)),
        (StrategyOpt::Cb(b), Some(db)) => Box::new(ContextBounded::with_horizon(b, db)),
        (StrategyOpt::Random(seed), _) => Box::new(RandomWalk::new(seed)),
    }
}

fn build_config(o: &RunOpts) -> Config {
    let mut config = if o.fair {
        Config::fair().with_fairness_k(o.k)
    } else {
        Config::unfair()
    };
    config = config.with_depth_bound(o.depth_bound);
    if let Some(n) = o.max_executions {
        config = config.with_max_executions(n);
    }
    match o.time_budget {
        Some(t) => config = config.with_time_budget(t),
        // Stateless search spaces are routinely astronomical; never hang
        // an interactive session. Pass --time-budget to override.
        None if o.max_executions.is_none() => {
            eprintln!("note: no budget given; defaulting to --time-budget 60");
            config = config.with_time_budget(std::time::Duration::from_secs(60));
        }
        None => {}
    }
    config
}

fn do_check<S, F>(factory: F, o: &RunOpts) -> ExitCode
where
    S: Capture + Clone + 'static,
    F: Fn() -> Kernel<S> + Copy + Sync,
{
    let stop = signal::install();
    let mut warnings: Vec<String> = Vec::new();
    let run = if o.shard.is_some_and(|(_, of)| of > 1) {
        check_shard(factory, o, stop)
    } else if o.jobs > 1 {
        check_parallel(factory, o, stop)
    } else {
        check_sequential(factory, o, stop, &mut warnings)
    };
    let report = match run {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(exitcode::USAGE);
        }
    };
    println!("{report}");
    for w in &warnings {
        eprintln!("warning: {w}");
    }
    if o.reduce && matches!(report.outcome, SearchOutcome::Complete) {
        report_savings(factory, o, report.stats.executions);
    }
    match &report.outcome {
        SearchOutcome::SafetyViolation(cex) | SearchOutcome::Panic(cex) => {
            if o.trace {
                println!("\n{}", cex.render(factory));
            }
            ExitCode::from(exitcode::SAFETY_VIOLATION)
        }
        SearchOutcome::Deadlock(cex) => {
            if o.trace {
                println!("\n{}", cex.render(factory));
            }
            ExitCode::from(exitcode::DEADLOCK)
        }
        SearchOutcome::Divergence(d) => {
            if o.trace {
                println!(
                    "\nschedule to the divergence ({} steps):\n  {}",
                    d.schedule.len(),
                    d.schedule
                        .iter()
                        .map(|x| x.to_string())
                        .collect::<Vec<_>>()
                        .join(" ")
                );
            }
            ExitCode::from(exitcode::LIVELOCK)
        }
        SearchOutcome::Complete => ExitCode::from(exitcode::CLEAN),
        SearchOutcome::BudgetExhausted(BudgetKind::WorkerPanicked) => {
            eprintln!("error: a search worker was lost after repeated panics");
            ExitCode::from(exitcode::INTERNAL)
        }
        SearchOutcome::BudgetExhausted(kind) => {
            if signal::interrupted() {
                match &o.checkpoint {
                    Some(path) => eprintln!(
                        "interrupted; resume with --resume {path} (add --checkpoint to keep \
                         journaling)"
                    ),
                    None => eprintln!(
                        "interrupted; progress was lost (pass --checkpoint <FILE> to make \
                         interruptions resumable)"
                    ),
                }
                ExitCode::from(exitcode::INTERRUPTED)
            } else {
                debug_assert!(matches!(
                    kind,
                    BudgetKind::Executions | BudgetKind::Time | BudgetKind::Cancelled
                ));
                ExitCode::from(exitcode::INCOMPLETE)
            }
        }
    }
}

/// Re-runs a completed `--reduce` search without sleep sets and prints
/// how much the reduction saved. The comparison pass reuses the same
/// budgets, so it either completes too or honestly reports that the
/// unreduced space did not fit.
fn report_savings<S, F>(factory: F, o: &RunOpts, reduced: u64)
where
    S: Capture + Clone + 'static,
    F: Fn() -> Kernel<S> + Copy + Sync,
{
    let mut plain_opts = o.clone();
    plain_opts.reduce = false;
    if plain_opts.time_budget.is_none() && plain_opts.max_executions.is_none() {
        // Mirror build_config's default budget without re-printing its note.
        plain_opts.time_budget = Some(std::time::Duration::from_secs(60));
    }
    let report = Explorer::new(
        factory,
        build_strategy(&plain_opts),
        build_config(&plain_opts),
    )
    .run();
    if matches!(report.outcome, SearchOutcome::Complete) {
        let plain = report.stats.executions;
        let ratio = plain as f64 / reduced.max(1) as f64;
        println!("sleep-set reduction: {reduced} executions vs {plain} unreduced ({ratio:.2}x)");
    } else {
        println!(
            "sleep-set reduction: {reduced} executions; the unreduced comparison pass did \
             not finish within the same budget"
        );
    }
}

/// Sequential `check`, with optional crash-safe checkpointing and
/// resume. Journal-write warnings (retries, degradation) are appended to
/// `warnings` for the final report.
fn check_sequential<S, F>(
    factory: F,
    o: &RunOpts,
    stop: Arc<AtomicBool>,
    warnings: &mut Vec<String>,
) -> Result<SearchReport, String>
where
    S: Capture + Clone + 'static,
    F: Fn() -> Kernel<S> + Copy + Sync,
{
    let mut strategy = build_strategy(o);
    let mut initial = SearchStats::default();
    if let Some(path) = &o.resume {
        let doc = read_journal(Path::new(path))?;
        validate_run_context(&doc, o, path)?;
        let checkpoint = checkpoint_from_json(
            doc.get("checkpoint")
                .ok_or_else(|| format!("{path}: journal has no checkpoint"))?,
        )?;
        strategy.restore(&checkpoint.strategy)?;
        initial = checkpoint.stats;
        eprintln!(
            "resuming from {path}: {} executions already explored",
            initial.executions
        );
    }
    let mut explorer = Explorer::new(factory, strategy, build_config(o))
        .with_stop_flag(stop)
        .with_initial_stats(initial);
    let writer = o
        .checkpoint
        .as_ref()
        .map(|path| Rc::new(RefCell::new(JournalWriter::new(path))));
    if let Some(writer) = &writer {
        let writer = Rc::clone(writer);
        let run = run_context_json(o);
        explorer = explorer.with_checkpointing(o.checkpoint_every, move |checkpoint| {
            let doc = Json::object([
                ("run", run.clone()),
                ("checkpoint", checkpoint_to_json(checkpoint)),
            ]);
            writer.borrow_mut().write(&doc);
        });
    }
    let report = explorer.run();
    if let Some(writer) = &writer {
        warnings.extend(writer.borrow().warnings().iter().cloned());
    }
    Ok(report)
}

/// The run-level options a checkpoint journal records, so `--resume`
/// can refuse a journal taken under different search parameters.
fn run_context_json(o: &RunOpts) -> Json {
    Json::object([
        ("workload", Json::Str(o.workload.clone())),
        ("bug", o.bug.clone().map(Json::Str).unwrap_or(Json::Null)),
        ("strategy", Json::Str(strategy_label(o))),
        ("fair", Json::Bool(o.fair)),
        ("k", Json::UInt(o.k)),
        ("depth_bound", Json::UInt(o.depth_bound as u64)),
        ("memory", Json::Str(o.memory.as_str().to_string())),
    ])
}

/// Rejects a resume journal whose recorded run context differs from the
/// current command line: a DFS frontier only makes sense against the
/// exact same workload and search parameters.
fn validate_run_context(doc: &Json, o: &RunOpts, path: &str) -> Result<(), String> {
    let run = doc
        .get("run")
        .ok_or_else(|| format!("{path}: journal has no run context"))?;
    let expect = run_context_json(o);
    for key in [
        "workload",
        "bug",
        "strategy",
        "fair",
        "k",
        "depth_bound",
        "memory",
    ] {
        let recorded = match run.get(key).map(Json::to_string_pretty) {
            Some(v) => v,
            // Journals written before the memory-model knob existed carry
            // no "memory" key; they were necessarily taken under sc.
            None if key == "memory" => Json::Str("sc".into()).to_string_pretty(),
            None => String::new(),
        };
        let current = expect
            .get(key)
            .map(Json::to_string_pretty)
            .unwrap_or_default();
        if recorded != current {
            return Err(format!(
                "{path}: journal was taken with {key} = {recorded}, but this run has \
                 {key} = {current} (resume must use the original workload, bug, strategy, \
                 memory model, and fairness flags)"
            ));
        }
    }
    Ok(())
}

/// The strategy in its command-line spelling, for journal validation.
fn strategy_label(o: &RunOpts) -> String {
    match o.strategy {
        StrategyOpt::Dfs => "dfs".into(),
        StrategyOpt::Cb(b) => format!("cb:{b}"),
        StrategyOpt::Random(seed) => format!("random:{seed}"),
    }
}

/// One shard of a cooperating `check`: this process covers its slice of
/// the root decision frontier (dfs) or of the seed/budget split
/// (`random:<seed>`). The printed report is mergeable: collect the K
/// shard reports and `merge_contiguous_shards`/`merge_seed_shards`
/// reproduce the unsharded result — which is exactly what the campaign
/// daemon does with `"shards": K` jobs.
fn check_shard<S, F>(factory: F, o: &RunOpts, stop: Arc<AtomicBool>) -> Result<SearchReport, String>
where
    S: Capture + Clone + 'static,
    F: Fn() -> Kernel<S> + Copy + Sync,
{
    let (index, of) = o.shard.expect("caller checked");
    let parallel = ParallelExplorer::new(factory, build_config(o), 1).with_stop_flag(stop);
    match o.strategy {
        StrategyOpt::Dfs => Ok(parallel.run_dfs_shard(ShardSpec { index, of })),
        StrategyOpt::Random(seed) => Ok(parallel.run_random_shard(seed, ShardSpec { index, of })),
        StrategyOpt::Cb(_) => Err("--shard needs --strategy dfs or random:<seed>".into()),
    }
}

/// Parallel `check`: shards the configured strategy across `--jobs`
/// workers. `dfs` partitions the root decision frontier, `random:<seed>`
/// shards seeds, and `cb:<B>` runs iterative context bounding with the
/// bounds `0..=B` dealt across the workers.
fn check_parallel<S, F>(
    factory: F,
    o: &RunOpts,
    stop: Arc<AtomicBool>,
) -> Result<SearchReport, String>
where
    S: Capture + Clone + 'static,
    F: Fn() -> Kernel<S> + Copy + Sync,
{
    if o.db.is_some() {
        return Err(
            "--db is not supported with --jobs > 1 (the horizon's random tail \
             is sequential-only)"
                .into(),
        );
    }
    let parallel = ParallelExplorer::new(factory, build_config(o), o.jobs).with_stop_flag(stop);
    match o.strategy {
        StrategyOpt::Dfs if o.reduce => Ok(parallel.run_dfs_with(chess_core::Reduction::SleepSets)),
        StrategyOpt::Dfs => Ok(parallel.run_dfs()),
        StrategyOpt::Random(seed) => Ok(parallel.run_random(seed)),
        StrategyOpt::Cb(max_bound) => {
            if o.reduce {
                return Err(
                    "--reduce with cb:<N> requires --jobs 1 (iterative parallel \
                     context bounding has no reduced path)"
                        .into(),
                );
            }
            let reports = parallel.run_iterative_cb(max_bound);
            for (bound, report) in &reports {
                println!("cb={bound}: {report}");
            }
            reports
                .iter()
                .find(|(_, r)| r.outcome.found_error())
                .or_else(|| reports.last())
                .map(|(_, r)| r.clone())
                .ok_or_else(|| "no context bound ran".to_string())
        }
    }
}

fn do_cover<S, F>(factory: F, o: &RunOpts) -> ExitCode
where
    S: Capture + Clone + 'static,
    F: Fn() -> Kernel<S> + Copy,
{
    if o.jobs > 1 {
        eprintln!("note: --jobs applies to `check` only; covering sequentially");
    }
    let mut cov = CoverageTracker::new();
    let report = Explorer::new(factory, build_strategy(o), build_config(o)).run_observed(&mut cov);
    println!("{report}");
    let limits = StatefulLimits {
        max_states: 2_000_000,
    };
    match StateGraph::build(&factory(), limits) {
        Ok(g) => println!(
            "coverage: {} of {} reachable states ({:.1}%)",
            cov.distinct_states(),
            g.state_count(),
            cov.percent_of(g.state_count()),
        ),
        Err(StatefulError::StateLimitExceeded(_)) => println!(
            "coverage: {} distinct states (total unknown: state space exceeds the stateful limit)",
            cov.distinct_states()
        ),
    }
    ExitCode::SUCCESS
}

fn do_truth<S, F>(factory: F) -> ExitCode
where
    S: Capture + Clone + 'static,
    F: Fn() -> Kernel<S> + Copy,
{
    let limits = StatefulLimits {
        max_states: 2_000_000,
    };
    match StateGraph::build(&factory(), limits) {
        Ok(g) => {
            println!("reachable states:   {}", g.state_count());
            println!("deadlock states:    {}", g.deadlock_states().len());
            println!("violation states:   {}", g.violation_states().len());
            match g.find_fair_scc() {
                Some(scc) => println!(
                    "livelock:           YES — fair cycle through {} state(s)",
                    scc.len()
                ),
                None => println!("livelock:           no (no fair cycle)"),
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("stateful search failed: {e}");
            ExitCode::from(3)
        }
    }
}
