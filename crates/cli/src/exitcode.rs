//! The CLI's exit-code contract.
//!
//! Scripts and CI jobs branch on these values, so they are stable API:
//! every distinct terminal condition of a search gets a distinct code,
//! documented in the `EXIT CODES` section of [`crate::opts::USAGE`] and
//! enforced by the integration tests in `tests/cli.rs`. The constants
//! live in `chess_core::exitcode` (the campaign daemon stores them in
//! verdict records, below the CLI layer) and are re-exported here.

pub use chess_core::exitcode::*;
