//! The CLI's exit-code contract.
//!
//! Scripts and CI jobs branch on these values, so they are stable API:
//! every distinct terminal condition of a search gets a distinct code,
//! documented in the `EXIT CODES` section of [`crate::opts::USAGE`] and
//! enforced by the integration tests in `tests/cli.rs`.

/// Search complete (or all fuzz oracles agreed); no error found.
pub const CLEAN: u8 = 0;

/// A safety violation was found — an assertion failure or a workload
/// panic (panics are isolated by the runtime and reported as replayable
/// violations).
pub const SAFETY_VIOLATION: u8 = 1;

/// Usage or configuration error (bad flags, unknown workload, unreadable
/// journal, mismatched resume options).
pub const USAGE: u8 = 2;

/// Search incomplete: the execution or wall-clock budget ran out before
/// the state space was exhausted.
pub const INCOMPLETE: u8 = 3;

/// A deadlock was found.
pub const DEADLOCK: u8 = 4;

/// A livelock was found: fair nontermination / divergence.
pub const LIVELOCK: u8 = 5;

/// SIGINT/SIGTERM stopped the search at an execution boundary; the final
/// checkpoint (if `--checkpoint` was given) was flushed and the run is
/// resumable with `--resume`.
pub const INTERRUPTED: u8 = 6;

/// Internal error: a search worker was lost after repeated panics, so
/// part of the search space may be unexplored.
pub const INTERNAL: u8 = 7;
