//! The workload registry: names, descriptions, seedable bugs, and
//! supported memory models.

/// Memory-model support of a workload that only uses locks, yields, and
/// plain shared state: buffering is meaningless, so only `sc` is valid.
const SC_ONLY: &[&str] = &["sc"];

/// Memory-model support of the atomics-based litmus workloads.
const ALL_MODELS: &[&str] = &["sc", "tso", "pso"];

/// Descriptor of one bundled workload.
pub struct WorkloadInfo {
    /// CLI name.
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// Seedable bugs as `(name, description)` pairs.
    pub bugs: &'static [(&'static str, &'static str)],
    /// Memory models the workload supports (`--memory` values).
    pub memory: &'static [&'static str],
}

/// All bundled workloads.
pub const WORKLOADS: &[WorkloadInfo] = &[
    WorkloadInfo {
        name: "counter",
        about: "mutex-protected shared counter (teaching example)",
        bugs: &[
            ("racy", "unprotected load/store increments lose updates"),
            ("deadlock", "AB-BA lock pair: the classic deadlock"),
        ],
        memory: SC_ONLY,
    },
    WorkloadInfo {
        name: "spinloop",
        about: "Figure 3: a thread spinning (with yields) on a flag",
        bugs: &[(
            "no-yield",
            "spin loop without yields: good-samaritan violation",
        )],
        memory: SC_ONLY,
    },
    WorkloadInfo {
        name: "philosophers",
        about: "dining philosophers, fair-terminating ordered-trylock variant (3 seats)",
        bugs: &[
            ("figure1", "Figure 1's ring try-lock protocol: livelock"),
            (
                "figure1-polite",
                "Figure 1 plus polite retry yields: pure livelock",
            ),
        ],
        memory: SC_ONLY,
    },
    WorkloadInfo {
        name: "wsq",
        about: "Cilk-THE work-stealing queue, owner + 2 thieves",
        bugs: &[
            ("unlocked-pop", "owner's conflict pop path skips the lock"),
            ("unsync-steal", "steal path without the lock: double take"),
            (
                "lost-tail",
                "conflict path forgets to restore the tail: lost item",
            ),
        ],
        memory: SC_ONLY,
    },
    WorkloadInfo {
        name: "promise",
        about: "promise library with spin-wait consumers",
        bugs: &[(
            "stale-spin",
            "Figure 8: spin on a stale local copy — livelock",
        )],
        memory: SC_ONLY,
    },
    WorkloadInfo {
        name: "workerpool",
        about: "worker-group task pool with two-level stop flags",
        bugs: &[(
            "figure7",
            "Idle returns without yielding during shutdown: GS violation",
        )],
        memory: SC_ONLY,
    },
    WorkloadInfo {
        name: "channels",
        about: "Dryad-like credit-based channel pipeline with a polling sink",
        bugs: &[
            ("credit-leak", "fast path skips a credit return: livelock"),
            (
                "racy-seq",
                "fan-in workers allocate log slots without the lock",
            ),
            (
                "eager-shutdown",
                "relay closes on the done flag without draining",
            ),
            (
                "draining-shutdown",
                "the incorrect fix: drains but misses in-flight messages",
            ),
        ],
        memory: SC_ONLY,
    },
    WorkloadInfo {
        name: "boundedbuffer",
        about: "condition-variable bounded buffer (monitor)",
        bugs: &[
            ("if-bug", "guard re-checked with `if` instead of `while`"),
            ("lost-wakeup", "one shared condvar with single signals"),
        ],
        memory: SC_ONLY,
    },
    WorkloadInfo {
        name: "treiber",
        about: "lock-free Treiber stack over a CAS'd head word",
        bugs: &[("aba", "unversioned head word: the classic ABA corruption")],
        memory: SC_ONLY,
    },
    WorkloadInfo {
        name: "rwcache",
        about: "rwlock-guarded read-mostly cache",
        bugs: &[(
            "upgrade-race",
            "refresh value precomputed under the read lock",
        )],
        memory: SC_ONLY,
    },
    WorkloadInfo {
        name: "bsp",
        about: "barrier-synchronized bulk-parallel computation",
        bugs: &[(
            "elided-barrier",
            "reduction consumed before the post-reduce barrier",
        )],
        memory: SC_ONLY,
    },
    WorkloadInfo {
        name: "miniboot",
        about: "mini-OS boot/shutdown, 2 services (exhaustively checkable)",
        bugs: &[],
        memory: SC_ONLY,
    },
    WorkloadInfo {
        name: "miniboot-full",
        about: "mini-OS boot/shutdown, 13 services + controller (14 threads)",
        bugs: &[],
        memory: SC_ONLY,
    },
    WorkloadInfo {
        name: "sb",
        about: "litmus: store buffering — both loads read 0 iff stores buffer",
        bugs: &[],
        memory: ALL_MODELS,
    },
    WorkloadInfo {
        name: "dekker",
        about: "litmus: Dekker's entry protocol — mutual exclusion breaks under tso/pso",
        bugs: &[],
        memory: ALL_MODELS,
    },
    WorkloadInfo {
        name: "dekker-fenced",
        about: "litmus: Dekker with store→load fences — safe under every model",
        bugs: &[],
        memory: ALL_MODELS,
    },
    WorkloadInfo {
        name: "mp",
        about: "litmus: message passing — stale read allowed under pso only",
        bugs: &[],
        memory: ALL_MODELS,
    },
    WorkloadInfo {
        name: "lb",
        about: "litmus: load buffering — forbidden under sc, tso, and pso",
        bugs: &[],
        memory: ALL_MODELS,
    },
    WorkloadInfo {
        name: "iriw",
        about: "litmus: independent reads of independent writes — forbidden everywhere",
        bugs: &[],
        memory: ALL_MODELS,
    },
];

/// Looks up a workload by CLI name.
pub fn find(name: &str) -> Option<&'static WorkloadInfo> {
    WORKLOADS.iter().find(|w| w.name == name)
}

/// Whether the named workload accepts `--memory tso|pso`. Unknown names
/// return false; callers should let the normal unknown-workload path
/// report those.
pub fn supports_relaxed(name: &str) -> bool {
    find(name).is_some_and(|w| w.memory.contains(&"tso"))
}

/// Renders the `list` command output.
pub fn render_list() -> String {
    let mut out = String::from("available workloads:\n");
    for w in WORKLOADS {
        if w.memory.len() > 1 {
            out.push_str(&format!(
                "  {:<16} {}   [--memory {}]\n",
                w.name,
                w.about,
                w.memory.join("|")
            ));
        } else {
            out.push_str(&format!("  {:<16} {}\n", w.name, w.about));
        }
        for (bug, about) in w.bugs {
            out.push_str(&format!("      --bug {:<18} {}\n", bug, about));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = WORKLOADS.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), WORKLOADS.len());
    }

    #[test]
    fn list_mentions_every_workload_and_bug() {
        let text = render_list();
        for w in WORKLOADS {
            assert!(text.contains(w.name));
            for (bug, _) in w.bugs {
                assert!(text.contains(bug), "missing bug {bug}");
            }
        }
    }

    #[test]
    fn list_shows_memory_models_for_litmus_workloads() {
        let text = render_list();
        assert!(text.contains("[--memory sc|tso|pso]"));
        // Exactly the litmus workloads advertise relaxed models.
        let relaxed: Vec<_> = WORKLOADS
            .iter()
            .filter(|w| w.memory.contains(&"tso"))
            .map(|w| w.name)
            .collect();
        assert_eq!(
            relaxed,
            ["sb", "dekker", "dekker-fenced", "mp", "lb", "iriw"]
        );
    }

    #[test]
    fn relaxed_support_lookup() {
        assert!(supports_relaxed("sb"));
        assert!(supports_relaxed("dekker-fenced"));
        assert!(!supports_relaxed("counter"));
        assert!(!supports_relaxed("no-such-workload"));
    }
}
