//! The workload registry: names, descriptions, and seedable bugs.

/// Descriptor of one bundled workload.
pub struct WorkloadInfo {
    /// CLI name.
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// Seedable bugs as `(name, description)` pairs.
    pub bugs: &'static [(&'static str, &'static str)],
}

/// All bundled workloads.
pub const WORKLOADS: &[WorkloadInfo] = &[
    WorkloadInfo {
        name: "counter",
        about: "mutex-protected shared counter (teaching example)",
        bugs: &[
            ("racy", "unprotected load/store increments lose updates"),
            ("deadlock", "AB-BA lock pair: the classic deadlock"),
        ],
    },
    WorkloadInfo {
        name: "spinloop",
        about: "Figure 3: a thread spinning (with yields) on a flag",
        bugs: &[(
            "no-yield",
            "spin loop without yields: good-samaritan violation",
        )],
    },
    WorkloadInfo {
        name: "philosophers",
        about: "dining philosophers, fair-terminating ordered-trylock variant (3 seats)",
        bugs: &[
            ("figure1", "Figure 1's ring try-lock protocol: livelock"),
            (
                "figure1-polite",
                "Figure 1 plus polite retry yields: pure livelock",
            ),
        ],
    },
    WorkloadInfo {
        name: "wsq",
        about: "Cilk-THE work-stealing queue, owner + 2 thieves",
        bugs: &[
            ("unlocked-pop", "owner's conflict pop path skips the lock"),
            ("unsync-steal", "steal path without the lock: double take"),
            (
                "lost-tail",
                "conflict path forgets to restore the tail: lost item",
            ),
        ],
    },
    WorkloadInfo {
        name: "promise",
        about: "promise library with spin-wait consumers",
        bugs: &[(
            "stale-spin",
            "Figure 8: spin on a stale local copy — livelock",
        )],
    },
    WorkloadInfo {
        name: "workerpool",
        about: "worker-group task pool with two-level stop flags",
        bugs: &[(
            "figure7",
            "Idle returns without yielding during shutdown: GS violation",
        )],
    },
    WorkloadInfo {
        name: "channels",
        about: "Dryad-like credit-based channel pipeline with a polling sink",
        bugs: &[
            ("credit-leak", "fast path skips a credit return: livelock"),
            (
                "racy-seq",
                "fan-in workers allocate log slots without the lock",
            ),
            (
                "eager-shutdown",
                "relay closes on the done flag without draining",
            ),
            (
                "draining-shutdown",
                "the incorrect fix: drains but misses in-flight messages",
            ),
        ],
    },
    WorkloadInfo {
        name: "boundedbuffer",
        about: "condition-variable bounded buffer (monitor)",
        bugs: &[
            ("if-bug", "guard re-checked with `if` instead of `while`"),
            ("lost-wakeup", "one shared condvar with single signals"),
        ],
    },
    WorkloadInfo {
        name: "treiber",
        about: "lock-free Treiber stack over a CAS'd head word",
        bugs: &[("aba", "unversioned head word: the classic ABA corruption")],
    },
    WorkloadInfo {
        name: "rwcache",
        about: "rwlock-guarded read-mostly cache",
        bugs: &[(
            "upgrade-race",
            "refresh value precomputed under the read lock",
        )],
    },
    WorkloadInfo {
        name: "bsp",
        about: "barrier-synchronized bulk-parallel computation",
        bugs: &[(
            "elided-barrier",
            "reduction consumed before the post-reduce barrier",
        )],
    },
    WorkloadInfo {
        name: "miniboot",
        about: "mini-OS boot/shutdown, 2 services (exhaustively checkable)",
        bugs: &[],
    },
    WorkloadInfo {
        name: "miniboot-full",
        about: "mini-OS boot/shutdown, 13 services + controller (14 threads)",
        bugs: &[],
    },
];

/// Renders the `list` command output.
pub fn render_list() -> String {
    let mut out = String::from("available workloads:\n");
    for w in WORKLOADS {
        out.push_str(&format!("  {:<16} {}\n", w.name, w.about));
        for (bug, about) in w.bugs {
            out.push_str(&format!("      --bug {:<18} {}\n", bug, about));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = WORKLOADS.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), WORKLOADS.len());
    }

    #[test]
    fn list_mentions_every_workload_and_bug() {
        let text = render_list();
        for w in WORKLOADS {
            assert!(text.contains(w.name));
            for (bug, _) in w.bugs {
                assert!(text.contains(bug), "missing bug {bug}");
            }
        }
    }
}
