//! The `fuzz` and `replay` subcommands: differential fuzzing of the
//! fair stateless search against the exhaustive stateful reference,
//! plus corpus-file replay.
//!
//! Every checked system runs through
//! [`chess_state::differential_check`], which executes one oracle per
//! theorem of the paper. Errors (injected or organic) are ddmin-
//! minimized and persisted as corpus files; oracle disagreements fail
//! the run with exit code 1 and leave a `discrepancy-*.json` record
//! behind for the nightly artifact upload.
//!
//! # Corpus format (version 1)
//!
//! ```json
//! {
//!   "version": 1,
//!   "kind": "deadlock",
//!   "message": "deadlock: no thread enabled",
//!   "depth_bound": 10000,
//!   "config": { "seed": 42, "max_threads": 3, "...": "..." },
//!   "original_len": 31,
//!   "schedule": [[0, 0], [1, 0], [0, 0]]
//! }
//! ```
//!
//! `config` holds every generator knob, so `replay` can regenerate the
//! identical [`chess_core::FuzzSystem`] and drive it through a
//! [`FixedSchedule`] with the recorded decisions.

use std::collections::HashSet;
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use chess_bench::{read_journal, schedule_from_json, schedule_to_json, JournalWriter, Json};
use chess_core::strategy::FixedSchedule;
use chess_core::{
    derive_seed, generate_atomic_program, generate_system, Config, Explorer, FuzzConfig,
    OutcomeKind, Schedule, SearchOutcome,
};
use chess_kernel::MemoryModel;
use chess_state::{
    differential_check, memory_monotonicity_check, Discrepancy, MemoryLimits, OracleLimits,
    SystemOutcome, Verdict,
};

use crate::opts::{FuzzOpts, ReplayOpts};
use crate::{exitcode, signal};

/// Corpus file schema version.
const CORPUS_VERSION: u64 = 1;

/// One worker's record of a checked system.
struct SystemResult {
    index: u64,
    seed: u64,
    verdict: Verdict,
    /// Executions enumerated by the relaxed-memory pass in
    /// `[sc, tso, pso]` order; `None` when the pass did not run.
    memory_executions: Option<[u64; 3]>,
}

/// Runs `fair-chess fuzz`.
pub fn do_fuzz(o: &FuzzOpts) -> ExitCode {
    if let Err(e) = std::fs::create_dir_all(&o.corpus_dir) {
        eprintln!("error: cannot create corpus dir '{}': {e}", o.corpus_dir);
        return ExitCode::from(exitcode::USAGE);
    }
    let limits = OracleLimits {
        max_states: o.max_states,
        reduce: o.reduce,
        ..OracleLimits::default()
    };

    // Crash-safe campaign journal: every checked system's verdict is
    // persisted as it completes, and `--resume` replays the journal
    // instead of re-checking those systems — the completed campaign's
    // report is identical to an uninterrupted run's.
    let stop = signal::install();
    let prior: Vec<SystemResult> = match &o.resume {
        Some(path) => match load_fuzz_journal(path, o) {
            Ok(prior) => {
                eprintln!(
                    "resuming from {path}: {} systems already checked",
                    prior.len()
                );
                prior
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(exitcode::USAGE);
            }
        },
        None => Vec::new(),
    };
    let done: HashSet<u64> = prior.iter().map(|r| r.index).collect();
    let writer: Option<Mutex<JournalWriter>> = o
        .checkpoint
        .as_ref()
        .map(|path| Mutex::new(JournalWriter::new(path)));

    let next = AtomicU64::new(0);
    let results: Mutex<Vec<SystemResult>> = Mutex::new(prior);
    std::thread::scope(|scope| {
        for _ in 0..o.jobs.max(1) {
            scope.spawn(|| loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= o.systems {
                    break;
                }
                if done.contains(&index) {
                    continue;
                }
                let seed = derive_seed(o.seed, index);
                let config = fuzz_config(o, seed);
                let sys = generate_system(&config);
                let mut verdict = differential_check(|| sys.clone(), &limits);
                let memory_executions = if o.memory.buffers() {
                    // Per-system relaxed-memory pass: enumerate one atomic
                    // program (same seed) under sc/tso/pso and require the
                    // terminal outcome sets to nest. A tight budget keeps
                    // the pass from dominating the campaign; blowups skip
                    // rather than fail.
                    let memory_limits = MemoryLimits {
                        max_executions: 20_000,
                        depth_bound: 1_000,
                    };
                    let prog = generate_atomic_program(&config);
                    let mv = memory_monotonicity_check(&prog, &memory_limits);
                    verdict.discrepancies.extend(mv.discrepancies);
                    Some(mv.executions)
                } else {
                    None
                };
                let doc = {
                    let mut all = results.lock().unwrap();
                    all.push(SystemResult {
                        index,
                        seed,
                        verdict,
                        memory_executions,
                    });
                    writer.as_ref().map(|_| fuzz_journal_doc(o, &all))
                };
                if let (Some(writer), Some(doc)) = (&writer, doc) {
                    writer.lock().unwrap().write(&doc);
                }
            });
        }
    });
    let mut results = results.into_inner().unwrap();
    results.sort_by_key(|r| r.index);

    if let Some(writer) = &writer {
        for warning in writer.lock().unwrap().warnings() {
            eprintln!("warning: {warning}");
        }
    }
    if signal::interrupted() && (results.len() as u64) < o.systems {
        eprintln!(
            "interrupted after {} of {} systems",
            results.len(),
            o.systems
        );
        match &o.checkpoint {
            Some(path) => {
                eprintln!("resume with --resume {path} (add --checkpoint to keep journaling)")
            }
            None => eprintln!(
                "progress was lost (pass --checkpoint <FILE> to make interruptions resumable)"
            ),
        }
        return ExitCode::from(exitcode::INTERRUPTED);
    }

    report_fuzz_run(o, &results)
}

/// Builds the generator configuration for one system.
fn fuzz_config(o: &FuzzOpts, seed: u64) -> FuzzConfig {
    FuzzConfig {
        max_threads: o.max_threads,
        max_ops: o.max_ops,
        yield_percent: o.yield_percent,
        inject_safety: o.inject_safety,
        inject_deadlock: o.inject_deadlock,
        inject_livelock: o.inject_livelock,
        inject_panic: o.inject_panic,
        memory: o.memory,
        ..FuzzConfig::default().with_seed(seed)
    }
}

/// The campaign-level knobs a fuzz journal records, so `--resume` can
/// refuse a journal taken with different generator settings.
fn fuzz_context_json(o: &FuzzOpts) -> Json {
    Json::object([
        ("systems", Json::UInt(o.systems)),
        ("seed", Json::UInt(o.seed)),
        ("max_threads", Json::UInt(o.max_threads as u64)),
        ("max_ops", Json::UInt(o.max_ops as u64)),
        ("yield_percent", Json::UInt(u64::from(o.yield_percent))),
        ("inject_safety", Json::Bool(o.inject_safety)),
        ("inject_deadlock", Json::Bool(o.inject_deadlock)),
        ("inject_livelock", Json::Bool(o.inject_livelock)),
        ("inject_panic", Json::Bool(o.inject_panic)),
        ("memory", Json::Str(o.memory.as_str().to_string())),
        ("max_states", Json::UInt(o.max_states as u64)),
        ("reduce", Json::Bool(o.reduce)),
    ])
}

/// Serializes the whole campaign state: run context plus one verdict
/// record per checked system.
fn fuzz_journal_doc(o: &FuzzOpts, results: &[SystemResult]) -> Json {
    Json::object([
        ("version", Json::UInt(CORPUS_VERSION)),
        ("run", fuzz_context_json(o)),
        (
            "results",
            Json::array(results.iter().map(|r| {
                let mut fields = vec![
                    ("index", Json::UInt(r.index)),
                    ("seed", Json::UInt(r.seed)),
                    ("verdict", verdict_to_json(&r.verdict)),
                ];
                if let Some(m) = r.memory_executions {
                    fields.push((
                        "memory_executions",
                        Json::array(m.iter().map(|&x| Json::UInt(x))),
                    ));
                }
                Json::object(fields)
            })),
        ),
    ])
}

/// Loads a fuzz journal and validates it against the current options.
fn load_fuzz_journal(path: &str, o: &FuzzOpts) -> Result<Vec<SystemResult>, String> {
    let doc = read_journal(Path::new(path))?;
    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{path}: fuzz journal has no version"))?;
    if version != CORPUS_VERSION {
        return Err(format!(
            "{path}: unsupported fuzz journal version {version}"
        ));
    }
    let run = doc
        .get("run")
        .ok_or_else(|| format!("{path}: fuzz journal has no run context"))?;
    let expect = fuzz_context_json(o);
    if run.to_string_pretty() != expect.to_string_pretty() {
        return Err(format!(
            "{path}: fuzz journal was taken with different options; resume must repeat the \
             original --systems/--seed/--inject/... flags\nrecorded: {}\ncurrent:  {}",
            run.to_string_pretty(),
            expect.to_string_pretty()
        ));
    }
    let Some(Json::Array(items)) = doc.get("results") else {
        return Err(format!("{path}: fuzz journal has no results array"));
    };
    items
        .iter()
        .map(|item| {
            let field = |name: &str| {
                item.get(name)
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("{path}: journal result is missing '{name}'"))
            };
            Ok(SystemResult {
                index: field("index")?,
                seed: field("seed")?,
                verdict: verdict_from_json(
                    item.get("verdict")
                        .ok_or_else(|| format!("{path}: journal result has no verdict"))?,
                )?,
                memory_executions: item.get("memory_executions").and_then(|j| match j {
                    Json::Array(v) if v.len() == 3 => {
                        let mut out = [0u64; 3];
                        for (slot, x) in out.iter_mut().zip(v) {
                            *slot = x.as_u64()?;
                        }
                        Some(out)
                    }
                    _ => None,
                }),
            })
        })
        .collect()
}

/// Serializes one differential verdict for the campaign journal.
fn verdict_to_json(v: &Verdict) -> Json {
    let outcome = match &v.outcome {
        SystemOutcome::Clean => Json::object([("kind", Json::Str("clean".into()))]),
        SystemOutcome::Skipped(why) => Json::object([
            ("kind", Json::Str("skipped".into())),
            ("why", Json::Str(why.clone())),
        ]),
        SystemOutcome::Buggy {
            kind,
            message,
            schedule,
            minimized,
        } => Json::object([
            ("kind", Json::Str("buggy".into())),
            ("bug", Json::Str(kind.as_str().into())),
            ("message", Json::Str(message.clone())),
            ("schedule", schedule_to_json(schedule)),
            ("minimized", schedule_to_json(minimized)),
        ]),
    };
    Json::object([
        ("graph_states", Json::UInt(v.graph_states as u64)),
        ("yield_free_states", Json::UInt(v.yield_free_states as u64)),
        ("covered_states", Json::UInt(v.covered_states as u64)),
        ("max_unrolling", Json::UInt(u64::from(v.max_unrolling))),
        ("dfs_executions", Json::UInt(v.dfs_executions)),
        ("sleep_executions", Json::UInt(v.sleep_executions)),
        ("outcome", outcome),
        (
            "discrepancies",
            Json::array(v.discrepancies.iter().map(|d| {
                Json::object([
                    ("oracle", Json::Str(d.oracle.into())),
                    ("detail", Json::Str(d.detail.clone())),
                ])
            })),
        ),
    ])
}

/// Parses a verdict serialized by [`verdict_to_json`].
fn verdict_from_json(json: &Json) -> Result<Verdict, String> {
    let num = |name: &str| {
        json.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("fuzz journal: verdict is missing '{name}'"))
    };
    let outcome_json = json
        .get("outcome")
        .ok_or("fuzz journal: verdict has no outcome")?;
    let text = |j: &Json, name: &str| j.get(name).and_then(Json::as_str).unwrap_or("").to_string();
    let outcome = match outcome_json.get("kind").and_then(Json::as_str) {
        Some("clean") => SystemOutcome::Clean,
        Some("skipped") => SystemOutcome::Skipped(text(outcome_json, "why")),
        Some("buggy") => SystemOutcome::Buggy {
            kind: outcome_json
                .get("bug")
                .and_then(Json::as_str)
                .and_then(OutcomeKind::parse)
                .ok_or("fuzz journal: buggy verdict has no recognizable bug kind")?,
            message: text(outcome_json, "message"),
            schedule: schedule_from_json(
                outcome_json
                    .get("schedule")
                    .ok_or("fuzz journal: buggy verdict has no schedule")?,
            )?,
            minimized: schedule_from_json(
                outcome_json
                    .get("minimized")
                    .ok_or("fuzz journal: buggy verdict has no minimized schedule")?,
            )?,
        },
        other => {
            return Err(format!(
                "fuzz journal: unknown verdict outcome kind {other:?}"
            ))
        }
    };
    let discrepancies = match json.get("discrepancies") {
        Some(Json::Array(items)) => items
            .iter()
            .map(|d| Discrepancy {
                // The oracle id is `&'static str` in memory; a resumed
                // journal leaks these few bytes once per discrepancy.
                oracle: Box::leak(text(d, "oracle").into_boxed_str()),
                detail: text(d, "detail"),
            })
            .collect(),
        _ => Vec::new(),
    };
    // Absent in journals written before the reduction oracles existed.
    let lenient = |name: &str| json.get(name).and_then(Json::as_u64).unwrap_or(0);
    Ok(Verdict {
        graph_states: num("graph_states")? as usize,
        yield_free_states: num("yield_free_states")? as usize,
        covered_states: num("covered_states")? as usize,
        max_unrolling: num("max_unrolling")? as u32,
        dfs_executions: lenient("dfs_executions"),
        sleep_executions: lenient("sleep_executions"),
        outcome,
        discrepancies,
    })
}

/// Prints the aggregate report, writes corpus and discrepancy files,
/// and picks the exit code (1 iff any oracle disagreed).
fn report_fuzz_run(o: &FuzzOpts, results: &[SystemResult]) -> ExitCode {
    let mut clean = 0u64;
    let mut skipped = 0u64;
    let mut buggy: Vec<(&'static str, u64)> = Vec::new();
    let mut max_unrolling = 0u32;
    let mut max_states = 0usize;
    let mut discrepancies = 0usize;

    for r in results {
        max_unrolling = max_unrolling.max(r.verdict.max_unrolling);
        max_states = max_states.max(r.verdict.graph_states);
        match &r.verdict.outcome {
            SystemOutcome::Clean => clean += 1,
            SystemOutcome::Skipped(why) => {
                skipped += 1;
                eprintln!("note: system {} (seed {}) skipped: {why}", r.index, r.seed);
            }
            SystemOutcome::Buggy {
                kind,
                message,
                schedule,
                minimized,
            } => {
                match buggy.iter_mut().find(|(k, _)| *k == kind.as_str()) {
                    Some((_, n)) => *n += 1,
                    None => buggy.push((kind.as_str(), 1)),
                }
                let path =
                    Path::new(&o.corpus_dir).join(format!("{}-{}.json", kind.as_str(), r.seed));
                let doc = corpus_entry(o, r.seed, *kind, message, schedule, minimized);
                if let Err(e) = std::fs::write(&path, doc.to_string_pretty()) {
                    eprintln!("error: cannot write corpus file {}: {e}", path.display());
                }
                println!(
                    "system {} (seed {}): {} — \"{message}\" minimized {} -> {} decisions, \
                     corpus {}",
                    r.index,
                    r.seed,
                    kind.as_str(),
                    schedule.len(),
                    minimized.len(),
                    path.display(),
                );
            }
        }
        if !r.verdict.discrepancies.is_empty() {
            discrepancies += r.verdict.discrepancies.len();
            for d in &r.verdict.discrepancies {
                eprintln!(
                    "DISCREPANCY system {} (seed {}) oracle {}: {}",
                    r.index, r.seed, d.oracle, d.detail
                );
            }
            let path = Path::new(&o.corpus_dir).join(format!("discrepancy-{}.json", r.seed));
            let doc = Json::object([
                ("version", Json::UInt(CORPUS_VERSION)),
                ("seed", Json::UInt(r.seed)),
                (
                    "oracles",
                    Json::array(r.verdict.discrepancies.iter().map(|d| {
                        Json::object([
                            ("oracle", Json::Str(d.oracle.into())),
                            ("detail", Json::Str(d.detail.clone())),
                        ])
                    })),
                ),
            ]);
            if let Err(e) = std::fs::write(&path, doc.to_string_pretty()) {
                eprintln!(
                    "error: cannot write discrepancy file {}: {e}",
                    path.display()
                );
            }
        }
    }

    let buggy_total: u64 = buggy.iter().map(|(_, n)| n).sum();
    println!(
        "fuzzed {} systems (base seed {}): {clean} clean, {buggy_total} buggy, {skipped} skipped",
        results.len(),
        o.seed,
    );
    for (kind, n) in &buggy {
        println!("  {kind}: {n}");
    }
    println!("largest state graph: {max_states} states");
    println!("max per-execution unrolling: {max_unrolling} (Theorem 4 metric)");
    if o.memory.buffers() {
        let model_index = if o.memory == MemoryModel::Pso { 2 } else { 1 };
        let (programs, sc_execs, buffered_execs) = results
            .iter()
            .filter_map(|r| r.memory_executions)
            .fold((0u64, 0u64, 0u64), |(n, sc, buf), m| {
                (n + 1, sc + m[0], buf + m[model_index])
            });
        println!(
            "relaxed-memory oracle ({}): {programs} atomic programs, {buffered_execs} buffered \
             executions vs {sc_execs} under sc",
            o.memory
        );
    }
    if o.reduce {
        let checked = results
            .iter()
            .filter(|r| !matches!(r.verdict.outcome, SystemOutcome::Skipped(_)));
        let (plain, reduced) = checked.fold((0u64, 0u64), |(p, s), r| {
            (p + r.verdict.dfs_executions, s + r.verdict.sleep_executions)
        });
        let saved = if plain > 0 {
            100.0 * (plain as f64 - reduced as f64) / plain as f64
        } else {
            0.0
        };
        println!(
            "sleep-set reduction: {reduced} executions vs {plain} unreduced ({saved:.1}% fewer)"
        );
    }
    if discrepancies > 0 {
        eprintln!("FAIL: {discrepancies} oracle discrepancies");
        ExitCode::from(exitcode::SAFETY_VIOLATION)
    } else {
        println!("all theorem oracles agreed");
        ExitCode::from(exitcode::CLEAN)
    }
}

/// Serializes one corpus entry.
fn corpus_entry(
    o: &FuzzOpts,
    seed: u64,
    kind: OutcomeKind,
    message: &str,
    original: &Schedule,
    minimized: &Schedule,
) -> Json {
    let limits = OracleLimits::default();
    let config = fuzz_config(o, seed);
    Json::object([
        ("version", Json::UInt(CORPUS_VERSION)),
        ("kind", Json::Str(kind.as_str().into())),
        ("message", Json::Str(message.into())),
        ("depth_bound", Json::UInt(limits.depth_bound as u64)),
        (
            "config",
            Json::object([
                ("seed", Json::UInt(config.seed)),
                ("max_threads", Json::UInt(config.max_threads as u64)),
                ("max_ops", Json::UInt(config.max_ops as u64)),
                ("counters", Json::UInt(config.counters as u64)),
                ("locks", Json::UInt(config.locks as u64)),
                ("flags", Json::UInt(config.flags as u64)),
                ("yield_percent", Json::UInt(u64::from(config.yield_percent))),
                ("inject_safety", Json::Bool(config.inject_safety)),
                ("inject_deadlock", Json::Bool(config.inject_deadlock)),
                ("inject_livelock", Json::Bool(config.inject_livelock)),
                ("inject_panic", Json::Bool(config.inject_panic)),
                ("memory", Json::Str(config.memory.as_str().to_string())),
            ]),
        ),
        ("original_len", Json::UInt(original.len() as u64)),
        ("schedule", schedule_to_json(minimized)),
    ])
}

/// Runs `fair-chess replay`.
pub fn do_replay(o: &ReplayOpts) -> ExitCode {
    match replay_corpus_file(&o.file) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses a corpus file, regenerates its system, and replays the
/// recorded schedule, requiring the recorded outcome kind.
fn replay_corpus_file(file: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read '{file}': {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("'{file}' is not valid JSON: {e}"))?;

    let version = doc
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("corpus file has no version")?;
    if version != CORPUS_VERSION {
        return Err(format!("unsupported corpus version {version}"));
    }
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .and_then(OutcomeKind::parse)
        .ok_or("corpus file has no recognizable kind")?;
    let schedule = schedule_from_json(doc.get("schedule").ok_or("corpus file has no schedule")?)?;
    let depth_bound = doc
        .get("depth_bound")
        .and_then(Json::as_u64)
        .unwrap_or(10_000) as usize;
    let config = parse_corpus_config(doc.get("config").ok_or("corpus file has no config")?)?;
    if config.memory.buffers() {
        return Err(format!(
            "corpus entry was recorded by a --memory {m} campaign; the schedule replayer \
             drives the regenerated system under sc semantics, so replaying it here would \
             silently change the memory model — re-run `fair-chess fuzz --memory {m}` with \
             the recorded seed instead",
            m = config.memory
        ));
    }

    let sys = generate_system(&config);
    println!(
        "replaying {} ({} decisions, seed {}):",
        kind.as_str(),
        schedule.len(),
        config.seed
    );
    let search = Config::fair().with_depth_bound(depth_bound);
    let report = Explorer::new(|| sys.clone(), FixedSchedule::new(schedule.clone()), search).run();
    match &report.outcome {
        SearchOutcome::SafetyViolation(cex)
        | SearchOutcome::Deadlock(cex)
        | SearchOutcome::Panic(cex) => {
            println!("{}", cex.render(|| sys.clone()));
        }
        other => println!("outcome: {other:?}"),
    }
    match OutcomeKind::of(&report.outcome) {
        Some(k) if k == kind => {
            println!("reproduced: {}", kind.as_str());
            Ok(())
        }
        got => Err(format!(
            "replay produced {:?}, corpus expected {}",
            got.map(OutcomeKind::as_str),
            kind.as_str()
        )),
    }
}

/// Reads the generator knobs back out of a corpus `config` object.
fn parse_corpus_config(json: &Json) -> Result<FuzzConfig, String> {
    let field = |name: &str| {
        json.get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("corpus config is missing '{name}'"))
    };
    let flag = |name: &str| {
        json.get(name)
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("corpus config is missing '{name}'"))
    };
    Ok(FuzzConfig {
        seed: field("seed")?,
        max_threads: field("max_threads")? as usize,
        max_ops: field("max_ops")? as usize,
        counters: field("counters")? as usize,
        locks: field("locks")? as usize,
        flags: field("flags")? as usize,
        yield_percent: field("yield_percent")? as u32,
        inject_safety: flag("inject_safety")?,
        inject_deadlock: flag("inject_deadlock")?,
        inject_livelock: flag("inject_livelock")?,
        // Absent in corpus files written before the panic knob existed.
        inject_panic: json
            .get("inject_panic")
            .and_then(Json::as_bool)
            .unwrap_or(false),
        // Absent in corpus files written before the memory-model knob
        // existed; those campaigns necessarily ran under sc.
        memory: match json.get("memory").and_then(Json::as_str) {
            None => MemoryModel::Sc,
            Some(s) => s
                .parse()
                .map_err(|e: String| format!("corpus config: {e}"))?,
        },
    })
}
