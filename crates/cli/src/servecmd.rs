//! The `serve` subcommand: a process-isolated campaign runner.
//!
//! `serve` reads a campaign manifest (a JSON document with a `jobs`
//! array, each job a `check` or `fuzz` description — see
//! [`crate::workercmd`] for the payload schema), re-execs this binary
//! as a pool of `worker` processes, and drives the campaign through
//! [`chess_core::procpool::Supervisor`]: idle workers steal the next
//! queued job, a watchdog kills workers whose jobs stop making
//! progress, failed attempts retry with deterministic exponential
//! backoff, and jobs that keep killing workers are quarantined after
//! `--max-attempts` with the failure evidence attached.
//!
//! The manifest/journal/report machinery is shared with the
//! long-running daemon and lives in [`chess_server::campaign`]; `serve`
//! is the one-shot front end over it. Like the daemon, `serve` expands
//! `"shards": K` check jobs into per-shard jobs and merges the shard
//! reports back before printing, so a sharded campaign's report equals
//! the unsharded one.
//!
//! # Persistence and resume
//!
//! With `--checkpoint <file>` every verdict atomically rewrites a
//! journal document (the same temp-file + rename machinery as `check`
//! and `fuzz`), tagged with an FNV-1a digest of the canonicalized
//! manifest. `--resume <file>` loads those verdicts, skips the decided
//! jobs, and — because job result lines carry no wall-clock field and
//! the final report is printed in manifest order — a campaign whose
//! supervisor was `kill -9`ed mid-run reprints the byte-identical
//! report the uninterrupted run would have produced. `--status-file`
//! additionally maintains an at-a-glance progress JSON, atomically
//! rewritten after every verdict.
//!
//! # Degradation ladder
//!
//! Mirroring the journal writer's degrade-to-memory policy, a pool
//! that cannot keep any worker alive (spawn failures, e.g. the binary
//! vanished) does not fail the campaign: leftover jobs run in-process
//! in the supervisor, each behind a loud warning. SIGINT checkpoints
//! what finished and exits 6 with a resume hint.

use std::cell::RefCell;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use chess_bench::JournalWriter;
use chess_core::procpool::{
    JobOutcome, JobSpec, JobVerdict, PoolConfig, ProcessWorkerFactory, Supervisor,
};
use chess_core::Progress;
use chess_server::campaign::{journal_doc, load_campaign_journal, write_status};
use chess_server::{expand_jobs, load_manifest, merge_verdicts, render_report, Verdict};

use crate::opts::ServeOpts;
use crate::{exitcode, signal, workercmd};

/// Entry point for `fair-chess serve`.
pub fn do_serve(o: &ServeOpts) -> ExitCode {
    match serve(o) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(exitcode::USAGE)
        }
    }
}

fn serve(o: &ServeOpts) -> Result<u8, String> {
    let manifest = load_manifest(&o.manifest, workercmd::validate_job)?;
    let expanded = expand_jobs(&manifest.jobs)?;
    let total = expanded.len();

    let mut verdicts: Vec<Verdict> = Vec::new();
    if let Some(path) = &o.resume {
        verdicts = load_campaign_journal(Path::new(path), manifest.digest)?;
        eprintln!(
            "resuming from {path}: {} of {total} jobs already decided",
            verdicts.len()
        );
        if o.checkpoint.is_none() {
            eprintln!("note: --resume without --checkpoint; this run will not journal");
        }
    }
    let decided: HashSet<String> = verdicts.iter().map(|v| v.id.clone()).collect();
    let todo: Vec<JobSpec> = expanded
        .iter()
        .filter(|j| !decided.contains(&j.id))
        .cloned()
        .collect();

    let writer = o
        .checkpoint
        .as_ref()
        .map(|path| RefCell::new(JournalWriter::new(path)));
    let verdicts = RefCell::new(verdicts);
    let persist = |pool_verdict: &JobVerdict| {
        let mut verdicts = verdicts.borrow_mut();
        verdicts.push(Verdict::from_pool(pool_verdict));
        if let Some(w) = &writer {
            w.borrow_mut()
                .write(&journal_doc(manifest.digest, &verdicts));
        }
        write_status(o.status_file.as_deref(), &verdicts, total);
    };

    let stop = signal::install();
    let program = worker_binary()?;
    // Workers heartbeat at a fraction of the watchdog deadline so a
    // live job always beats it.
    let hb_ms = (o.heartbeat_timeout.as_millis() as u64 / 5).clamp(10, 500);
    let factory = ProcessWorkerFactory::new(
        program,
        vec![
            "worker".to_string(),
            "--heartbeat-millis".to_string(),
            hb_ms.to_string(),
        ],
    );
    let config = PoolConfig {
        workers: o.workers,
        heartbeat_timeout: o.heartbeat_timeout,
        max_attempts: o.max_attempts,
        jitter_seed: o.jitter_seed,
        ..PoolConfig::default()
    };

    let mut report = Supervisor::new(factory, config)
        .with_stop_flag(Arc::clone(&stop))
        .run(todo, persist);
    for w in &report.warnings {
        eprintln!("warning: {w}");
    }

    // Degradation: the pool gave jobs back without a stop request, so
    // no worker could be kept alive. Run them here rather than failing
    // the campaign — isolation is lost, the verdicts are not.
    if !report.stopped && !report.leftover.is_empty() {
        eprintln!(
            "warning: no worker process available; running {} leftover job(s) \
             in-process without isolation",
            report.leftover.len()
        );
        for spec in std::mem::take(&mut report.leftover) {
            if stop.load(Ordering::SeqCst) {
                report.stopped = true;
                break;
            }
            let progress = Arc::new(Progress::default());
            let outcome = match workercmd::run_job(&spec.payload, &progress) {
                Ok(result) => JobOutcome::Done {
                    payload: result.to_payload(),
                },
                Err(msg) => JobOutcome::Quarantined {
                    failures: vec![chess_core::procpool::AttemptFailure::HandlerError(msg)],
                },
            };
            persist(&JobVerdict {
                id: spec.id,
                attempts: 1,
                outcome,
            });
        }
    }

    let verdicts = verdicts.into_inner();
    let s = &report.stats;
    eprintln!(
        "campaign stats: {} workers spawned, {} lost, {} watchdog kills, \
         {} failed attempts, {} spawn failures",
        s.workers_spawned, s.workers_lost, s.watchdog_kills, s.failed_attempts, s.spawn_failures
    );

    if report.stopped {
        eprintln!("interrupted: {} of {total} jobs decided", verdicts.len());
        if let Some(path) = &o.checkpoint {
            eprintln!(
                "resume with: fair-chess serve {} --resume {path} --checkpoint {path}",
                o.manifest
            );
        }
        return Ok(exitcode::INTERRUPTED);
    }

    // Collapse shard verdicts back to manifest-level jobs, then print
    // the deterministic report in manifest order.
    let merged = merge_verdicts(&manifest, &verdicts)?;
    let (text, code) = render_report(&manifest, &merged)?;
    print!("{text}");
    Ok(code)
}

/// Resolves the binary to re-exec as a worker. `FAIR_CHESS_WORKER_BIN`
/// overrides the default (this executable) — the fault-injection tests
/// point it at a nonexistent path to force the degraded in-process
/// path. Shared with the daemon front end.
pub(crate) fn worker_binary() -> Result<PathBuf, String> {
    match std::env::var_os("FAIR_CHESS_WORKER_BIN") {
        Some(p) => Ok(PathBuf::from(p)),
        None => std::env::current_exe().map_err(|e| format!("cannot locate own executable: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `load_manifest` itself is covered in `chess-server`; what this
    /// crate adds is the wiring to the real workload table, so the
    /// validator must catch semantic problems the generic layer cannot.
    #[test]
    fn manifest_validation_uses_the_workload_table() {
        let dir = std::env::temp_dir().join(format!("fair-chess-badman-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let check = |name: &str, text: &str, needle: &str| {
            let path = dir.join(name);
            std::fs::write(&path, text).unwrap();
            let err = load_manifest(path.to_str().unwrap(), workercmd::validate_job).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        };
        check(
            "nokind.json",
            r#"{"jobs": [{"id": "x", "kind": "bake"}]}"#,
            "unknown job kind",
        );
        check(
            "noworkload.json",
            r#"{"jobs": [{"id": "x", "kind": "check"}]}"#,
            "no 'workload'",
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A sharded manifest expands to shard jobs for the pool while the
    /// report stays keyed by the manifest ids.
    #[test]
    fn serve_expands_sharded_jobs() {
        let dir = std::env::temp_dir().join(format!("fair-chess-shards-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.json");
        std::fs::write(
            &path,
            r#"{"jobs": [{"id": "w", "workload": "counter", "shards": 2},
                         {"id": "f", "kind": "fuzz", "systems": 1}]}"#,
        )
        .unwrap();
        let manifest = load_manifest(path.to_str().unwrap(), workercmd::validate_job).unwrap();
        let expanded = expand_jobs(&manifest.jobs).unwrap();
        let ids: Vec<&str> = expanded.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids, ["w#0", "w#1", "f"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
