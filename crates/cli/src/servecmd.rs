//! The `serve` subcommand: a process-isolated campaign runner.
//!
//! `serve` reads a campaign manifest (a JSON document with a `jobs`
//! array, each job a `check` or `fuzz` description — see
//! [`crate::workercmd`] for the payload schema), re-execs this binary
//! as a pool of `worker` processes, and drives the campaign through
//! [`chess_core::procpool::Supervisor`]: idle workers steal the next
//! queued job, a watchdog kills workers whose jobs stop making
//! progress, failed attempts retry with deterministic exponential
//! backoff, and jobs that keep killing workers are quarantined after
//! `--max-attempts` with the failure evidence attached.
//!
//! # Persistence and resume
//!
//! With `--checkpoint <file>` every verdict atomically rewrites a
//! journal document (the same temp-file + rename machinery as `check`
//! and `fuzz`), tagged with an FNV-1a digest of the canonicalized
//! manifest. `--resume <file>` loads those verdicts, skips the decided
//! jobs, and — because job result lines carry no wall-clock field and
//! the final report is printed in manifest order — a campaign whose
//! supervisor was `kill -9`ed mid-run reprints the byte-identical
//! report the uninterrupted run would have produced. `--status-file`
//! additionally maintains an at-a-glance progress JSON, atomically
//! rewritten after every verdict.
//!
//! # Degradation ladder
//!
//! Mirroring the journal writer's degrade-to-memory policy, a pool
//! that cannot keep any worker alive (spawn failures, e.g. the binary
//! vanished) does not fail the campaign: leftover jobs run in-process
//! in the supervisor, each behind a loud warning. SIGINT checkpoints
//! what finished and exits 6 with a resume hint.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use chess_bench::{read_journal, write_atomic, JournalWriter, Json};
use chess_core::procpool::{
    JobOutcome, JobSpec, JobVerdict, PoolConfig, ProcessWorkerFactory, Supervisor,
};
use chess_core::Progress;

use crate::opts::ServeOpts;
use crate::{exitcode, signal, workercmd};

/// Campaign journal format version.
const SERVE_JOURNAL_VERSION: u64 = 1;

/// Entry point for `fair-chess serve`.
pub fn do_serve(o: &ServeOpts) -> ExitCode {
    match serve(o) {
        Ok(code) => ExitCode::from(code),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(exitcode::USAGE)
        }
    }
}

/// A validated campaign manifest.
#[derive(Debug)]
struct Manifest {
    /// Jobs in manifest order; payload is the canonicalized job object.
    jobs: Vec<JobSpec>,
    /// FNV-1a digest of the canonicalized manifest text, stored in the
    /// journal so `--resume` rejects a journal from a different
    /// campaign.
    digest: u64,
}

/// A terminal job verdict as `serve` records it: failures are kept as
/// display strings so the journal round-trips them exactly and a
/// resumed report reprints byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
struct ServeVerdict {
    id: String,
    attempts: u32,
    outcome: ServeOutcome,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ServeOutcome {
    Done { payload: String },
    Quarantined { failures: Vec<String> },
}

impl ServeVerdict {
    fn from_pool(v: &JobVerdict) -> ServeVerdict {
        ServeVerdict {
            id: v.id.clone(),
            attempts: v.attempts,
            outcome: match &v.outcome {
                JobOutcome::Done { payload } => ServeOutcome::Done {
                    payload: payload.clone(),
                },
                JobOutcome::Quarantined { failures } => ServeOutcome::Quarantined {
                    failures: failures.iter().map(|f| f.to_string()).collect(),
                },
            },
        }
    }
}

fn serve(o: &ServeOpts) -> Result<u8, String> {
    let manifest = load_manifest(&o.manifest)?;
    let total = manifest.jobs.len();

    let mut verdicts: Vec<ServeVerdict> = Vec::new();
    if let Some(path) = &o.resume {
        verdicts = load_serve_journal(Path::new(path), manifest.digest)?;
        eprintln!(
            "resuming from {path}: {} of {total} jobs already decided",
            verdicts.len()
        );
        if o.checkpoint.is_none() {
            eprintln!("note: --resume without --checkpoint; this run will not journal");
        }
    }
    let decided: HashSet<String> = verdicts.iter().map(|v| v.id.clone()).collect();
    let todo: Vec<JobSpec> = manifest
        .jobs
        .iter()
        .filter(|j| !decided.contains(&j.id))
        .cloned()
        .collect();

    let writer = o
        .checkpoint
        .as_ref()
        .map(|path| RefCell::new(JournalWriter::new(path)));
    let verdicts = RefCell::new(verdicts);
    let persist = |pool_verdict: &JobVerdict| {
        let mut verdicts = verdicts.borrow_mut();
        verdicts.push(ServeVerdict::from_pool(pool_verdict));
        if let Some(w) = &writer {
            w.borrow_mut()
                .write(&journal_doc(manifest.digest, &verdicts));
        }
        write_status(o.status_file.as_deref(), &verdicts, total);
    };

    let stop = signal::install();
    let program = worker_binary()?;
    // Workers heartbeat at a fraction of the watchdog deadline so a
    // live job always beats it.
    let hb_ms = (o.heartbeat_timeout.as_millis() as u64 / 5).clamp(10, 500);
    let factory = ProcessWorkerFactory::new(
        program,
        vec![
            "worker".to_string(),
            "--heartbeat-millis".to_string(),
            hb_ms.to_string(),
        ],
    );
    let config = PoolConfig {
        workers: o.workers,
        heartbeat_timeout: o.heartbeat_timeout,
        max_attempts: o.max_attempts,
        jitter_seed: o.jitter_seed,
        ..PoolConfig::default()
    };

    let mut report = Supervisor::new(factory, config)
        .with_stop_flag(Arc::clone(&stop))
        .run(todo, persist);
    for w in &report.warnings {
        eprintln!("warning: {w}");
    }

    // Degradation: the pool gave jobs back without a stop request, so
    // no worker could be kept alive. Run them here rather than failing
    // the campaign — isolation is lost, the verdicts are not.
    if !report.stopped && !report.leftover.is_empty() {
        eprintln!(
            "warning: no worker process available; running {} leftover job(s) \
             in-process without isolation",
            report.leftover.len()
        );
        for spec in std::mem::take(&mut report.leftover) {
            if stop.load(Ordering::SeqCst) {
                report.stopped = true;
                break;
            }
            let progress = Arc::new(Progress::default());
            let outcome = match workercmd::run_job(&spec.payload, &progress) {
                Ok(result) => JobOutcome::Done {
                    payload: workercmd::job_result_to_json(&result).to_string_pretty(),
                },
                Err(msg) => JobOutcome::Quarantined {
                    failures: vec![chess_core::procpool::AttemptFailure::HandlerError(msg)],
                },
            };
            persist(&JobVerdict {
                id: spec.id,
                attempts: 1,
                outcome,
            });
        }
    }

    let verdicts = verdicts.into_inner();
    let s = &report.stats;
    eprintln!(
        "campaign stats: {} workers spawned, {} lost, {} watchdog kills, \
         {} failed attempts, {} spawn failures",
        s.workers_spawned, s.workers_lost, s.watchdog_kills, s.failed_attempts, s.spawn_failures
    );

    if report.stopped {
        eprintln!("interrupted: {} of {total} jobs decided", verdicts.len());
        if let Some(path) = &o.checkpoint {
            eprintln!(
                "resume with: fair-chess serve {} --resume {path} --checkpoint {path}",
                o.manifest
            );
        }
        return Ok(exitcode::INTERRUPTED);
    }

    print_report(&manifest, &verdicts)
}

/// Resolves the binary to re-exec as a worker. `FAIR_CHESS_WORKER_BIN`
/// overrides the default (this executable) — the fault-injection tests
/// point it at a nonexistent path to force the degraded in-process
/// path.
fn worker_binary() -> Result<PathBuf, String> {
    match std::env::var_os("FAIR_CHESS_WORKER_BIN") {
        Some(p) => Ok(PathBuf::from(p)),
        None => std::env::current_exe().map_err(|e| format!("cannot locate own executable: {e}")),
    }
}

// ---------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------

fn load_manifest(path: &str) -> Result<Manifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let Some(Json::Array(items)) = doc.get("jobs") else {
        return Err(format!("{path}: manifest has no \"jobs\" array"));
    };
    let mut jobs = Vec::with_capacity(items.len());
    let mut seen = HashSet::new();
    for (i, item) in items.iter().enumerate() {
        let id = item
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{path}: job #{i} has no \"id\""))?;
        if id.is_empty() || id.chars().any(char::is_whitespace) {
            // The id travels in protocol line headers, which are
            // space-delimited.
            return Err(format!(
                "{path}: job id {id:?} is empty or contains whitespace"
            ));
        }
        if !seen.insert(id.to_string()) {
            return Err(format!("{path}: duplicate job id {id:?}"));
        }
        workercmd::validate_job(item).map_err(|e| format!("{path}: job {id:?}: {e}"))?;
        jobs.push(JobSpec {
            id: id.to_string(),
            payload: item.to_string_pretty(),
        });
    }
    // Digest the re-serialized document, not the raw bytes, so
    // insignificant whitespace edits do not orphan a journal.
    Ok(Manifest {
        digest: fnv1a(&doc.to_string_pretty()),
        jobs,
    })
}

fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Journal + status file
// ---------------------------------------------------------------------

fn journal_doc(digest: u64, verdicts: &[ServeVerdict]) -> Json {
    Json::object([
        ("version", Json::UInt(SERVE_JOURNAL_VERSION)),
        ("manifest_digest", Json::UInt(digest)),
        (
            "verdicts",
            Json::array(verdicts.iter().map(verdict_to_json)),
        ),
    ])
}

fn verdict_to_json(v: &ServeVerdict) -> Json {
    let outcome = match &v.outcome {
        ServeOutcome::Done { payload } => Json::object([
            ("kind", Json::Str("done".to_string())),
            ("payload", Json::Str(payload.clone())),
        ]),
        ServeOutcome::Quarantined { failures } => Json::object([
            ("kind", Json::Str("quarantined".to_string())),
            (
                "failures",
                Json::array(failures.iter().map(|f| Json::Str(f.clone()))),
            ),
        ]),
    };
    Json::object([
        ("id", Json::Str(v.id.clone())),
        ("attempts", Json::UInt(u64::from(v.attempts))),
        ("outcome", outcome),
    ])
}

fn verdict_from_json(json: &Json) -> Result<ServeVerdict, String> {
    let id = json
        .get("id")
        .and_then(Json::as_str)
        .ok_or("verdict has no id")?
        .to_string();
    let attempts = json
        .get("attempts")
        .and_then(Json::as_u64)
        .ok_or("verdict has no attempts")? as u32;
    let outcome = json.get("outcome").ok_or("verdict has no outcome")?;
    let outcome = match outcome.get("kind").and_then(Json::as_str) {
        Some("done") => ServeOutcome::Done {
            payload: outcome
                .get("payload")
                .and_then(Json::as_str)
                .ok_or("done verdict has no payload")?
                .to_string(),
        },
        Some("quarantined") => {
            let Some(Json::Array(items)) = outcome.get("failures") else {
                return Err("quarantined verdict has no failures array".to_string());
            };
            let mut failures = Vec::with_capacity(items.len());
            for f in items {
                failures.push(f.as_str().ok_or("failure is not a string")?.to_string());
            }
            ServeOutcome::Quarantined { failures }
        }
        other => return Err(format!("unknown verdict kind {other:?}")),
    };
    Ok(ServeVerdict {
        id,
        attempts,
        outcome,
    })
}

fn load_serve_journal(path: &Path, digest: u64) -> Result<Vec<ServeVerdict>, String> {
    let doc = read_journal(path)?;
    let version = doc.get("version").and_then(Json::as_u64);
    if version != Some(SERVE_JOURNAL_VERSION) {
        return Err(format!(
            "{}: unsupported campaign journal version {version:?}",
            path.display()
        ));
    }
    let recorded = doc.get("manifest_digest").and_then(Json::as_u64);
    if recorded != Some(digest) {
        return Err(format!(
            "{}: journal was taken for a different manifest \
             (digest {recorded:?}, expected {digest})",
            path.display()
        ));
    }
    let Some(Json::Array(items)) = doc.get("verdicts") else {
        return Err(format!("{}: journal has no verdicts array", path.display()));
    };
    let mut verdicts = Vec::with_capacity(items.len());
    for item in items {
        verdicts.push(verdict_from_json(item).map_err(|e| format!("{}: {e}", path.display()))?);
    }
    Ok(verdicts)
}

fn write_status(path: Option<&str>, verdicts: &[ServeVerdict], total: usize) {
    let Some(path) = path else { return };
    let done = verdicts
        .iter()
        .filter(|v| matches!(v.outcome, ServeOutcome::Done { .. }))
        .count();
    let doc = Json::object([
        ("total", Json::UInt(total as u64)),
        ("done", Json::UInt(done as u64)),
        ("quarantined", Json::UInt((verdicts.len() - done) as u64)),
        ("pending", Json::UInt((total - verdicts.len()) as u64)),
    ]);
    if let Err(e) = write_atomic(Path::new(path), &doc.to_string_pretty()) {
        // Status is advisory; never fail a campaign over it.
        eprintln!("warning: status file: {e}");
    }
}

// ---------------------------------------------------------------------
// Final report
// ---------------------------------------------------------------------

/// Exit-code precedence for the campaign's worst job: an actual bug
/// outranks a deadlock outranks a livelock outranks a quarantine
/// outranks an exhausted budget outranks clean.
fn severity(code: u8) -> u8 {
    match code {
        exitcode::SAFETY_VIOLATION => 5,
        exitcode::DEADLOCK => 4,
        exitcode::LIVELOCK => 3,
        exitcode::INTERNAL => 2,
        exitcode::INCOMPLETE => 1,
        _ => 0,
    }
}

/// Prints the deterministic final report (manifest order, one line per
/// job, then a summary line) and returns the campaign exit code.
fn print_report(manifest: &Manifest, verdicts: &[ServeVerdict]) -> Result<u8, String> {
    let by_id: HashMap<&str, &ServeVerdict> = verdicts.iter().map(|v| (v.id.as_str(), v)).collect();
    let (mut done, mut quarantined) = (0usize, 0usize);
    let mut worst = exitcode::CLEAN;
    for job in &manifest.jobs {
        let Some(v) = by_id.get(job.id.as_str()) else {
            return Err(format!("internal: job {:?} has no verdict", job.id));
        };
        let code = match &v.outcome {
            ServeOutcome::Done { payload } => {
                let result = workercmd::job_result_from_payload(payload)
                    .map_err(|e| format!("job {:?}: {e}", v.id))?;
                println!("{}: {}", v.id, result.line);
                done += 1;
                result.code
            }
            ServeOutcome::Quarantined { failures } => {
                println!(
                    "{}: quarantined after {} attempts ({})",
                    v.id,
                    v.attempts,
                    failures.join("; ")
                );
                quarantined += 1;
                exitcode::INTERNAL
            }
        };
        if severity(code) > severity(worst) {
            worst = code;
        }
    }
    println!(
        "campaign: {done} of {} jobs done, {quarantined} quarantined",
        manifest.jobs.len()
    );
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_verdicts() -> Vec<ServeVerdict> {
        vec![
            ServeVerdict {
                id: "a".to_string(),
                attempts: 1,
                outcome: ServeOutcome::Done {
                    payload: "{\"code\": 0, \"line\": \"search complete\"}".to_string(),
                },
            },
            ServeVerdict {
                id: "b".to_string(),
                attempts: 3,
                outcome: ServeOutcome::Quarantined {
                    failures: vec![
                        "worker died".to_string(),
                        "watchdog timeout".to_string(),
                        "protocol violation: \"!!\"".to_string(),
                    ],
                },
            },
        ]
    }

    #[test]
    fn journal_round_trips_verdicts() {
        let verdicts = sample_verdicts();
        let doc = journal_doc(7, &verdicts);
        let text = doc.to_string_pretty();
        let parsed = Json::parse(&text).unwrap();
        let Some(Json::Array(items)) = parsed.get("verdicts") else {
            panic!("no verdicts array");
        };
        let back: Vec<ServeVerdict> = items
            .iter()
            .map(|i| verdict_from_json(i).unwrap())
            .collect();
        assert_eq!(back, verdicts);
        assert_eq!(
            parsed.get("manifest_digest").and_then(Json::as_u64),
            Some(7)
        );
    }

    #[test]
    fn severity_orders_the_exit_code_contract() {
        // 1 > 4 > 5 > 7 > 3 > 0
        let order = [
            exitcode::SAFETY_VIOLATION,
            exitcode::DEADLOCK,
            exitcode::LIVELOCK,
            exitcode::INTERNAL,
            exitcode::INCOMPLETE,
            exitcode::CLEAN,
        ];
        for pair in order.windows(2) {
            assert!(
                severity(pair[0]) > severity(pair[1]),
                "{} should outrank {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn manifest_digest_ignores_whitespace_but_not_content() {
        let dir = std::env::temp_dir().join(format!("fair-chess-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, text: &str| {
            let path = dir.join(name);
            std::fs::write(&path, text).unwrap();
            path.to_str().unwrap().to_string()
        };
        let a = load_manifest(&write(
            "a.json",
            r#"{"jobs": [{"id": "j1", "workload": "counter", "max_executions": 10}]}"#,
        ))
        .unwrap();
        let b = load_manifest(&write(
            "b.json",
            "{\n  \"jobs\": [ {\"id\": \"j1\",\n    \"workload\": \"counter\", \"max_executions\": 10} ]\n}",
        ))
        .unwrap();
        let c = load_manifest(&write(
            "c.json",
            r#"{"jobs": [{"id": "j1", "workload": "counter", "max_executions": 11}]}"#,
        ))
        .unwrap();
        assert_eq!(a.digest, b.digest, "whitespace must not orphan a journal");
        assert_ne!(a.digest, c.digest, "content changes must be detected");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_rejects_bad_jobs() {
        let dir = std::env::temp_dir().join(format!("fair-chess-badman-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let check = |name: &str, text: &str, needle: &str| {
            let path = dir.join(name);
            std::fs::write(&path, text).unwrap();
            let err = load_manifest(path.to_str().unwrap()).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        };
        check("nojobs.json", r#"{"work": []}"#, "no \"jobs\" array");
        check(
            "noid.json",
            r#"{"jobs": [{"workload": "counter"}]}"#,
            "no \"id\"",
        );
        check(
            "space.json",
            r#"{"jobs": [{"id": "a b", "workload": "counter"}]}"#,
            "whitespace",
        );
        check(
            "dup.json",
            r#"{"jobs": [{"id": "x", "workload": "counter"},
                         {"id": "x", "workload": "counter"}]}"#,
            "duplicate",
        );
        check(
            "nokind.json",
            r#"{"jobs": [{"id": "x", "kind": "bake"}]}"#,
            "unknown job kind",
        );
        check(
            "noworkload.json",
            r#"{"jobs": [{"id": "x", "kind": "check"}]}"#,
            "no 'workload'",
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
