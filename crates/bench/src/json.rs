//! A minimal JSON value type, serializer, and parser for persisting
//! experiment artifacts and fuzzing corpora. The build environment
//! cannot fetch `serde`/`serde_json`, so a small hand-rolled value tree
//! plus the [`impl_to_json!`](crate::impl_to_json) macro covers writing, and a recursive-
//! descent [`Json::parse`] covers reading the files back (the `chess
//! replay` corpus path and `--db` artifacts share this one format).

use std::fmt::Write as _;

use chess_core::{Decision, Schedule};
use chess_kernel::ThreadId;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (kept exact; u64 doesn't fit in f64).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float, rendered with enough digits to round-trip.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Pretty-prints with two-space indentation (the `serde_json`
    /// convention our previous artifacts used).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Parses a JSON document (the inverse of
    /// [`Json::to_string_pretty`] up to whitespace and number typing:
    /// unsigned integers parse as [`Json::UInt`], negative ones as
    /// [`Json::Int`], anything with a fraction or exponent as
    /// [`Json::Float`]).
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax
    /// error, or of trailing garbage after the document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let closing_pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    // JSON has no NaN/Inf; serde_json emits null too.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&closing_pad);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                out.push_str(&closing_pad);
                out.push('}');
            }
        }
    }
}

/// Recursive-descent JSON parser over raw bytes (strings are validated
/// UTF-8 by construction: input is `&str` and escapes decode to chars).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(format!("expected '{kw}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Json::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(format!("unterminated string at byte {}", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {}", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ascii \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                    let c = chunk.chars().next().expect("nonempty chunk");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number chars are ascii");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number at byte {start}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number at byte {start}"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

impl ToJson for Decision {
    /// A decision serializes as the compact pair `[thread, choice]`.
    fn to_json(&self) -> Json {
        Json::array([
            Json::UInt(self.thread.index() as u64),
            Json::UInt(u64::from(self.choice)),
        ])
    }
}

/// Serializes a schedule as an array of `[thread, choice]` pairs — the
/// corpus and `--db` wire format.
pub fn schedule_to_json(schedule: &[Decision]) -> Json {
    Json::array(schedule.iter().map(ToJson::to_json))
}

/// Parses a schedule serialized by [`schedule_to_json`].
///
/// # Errors
///
/// Returns a message describing the first malformed entry.
pub fn schedule_from_json(json: &Json) -> Result<Schedule, String> {
    let items = json
        .as_array()
        .ok_or_else(|| "schedule is not an array".to_string())?;
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let pair = item
            .as_array()
            .ok_or_else(|| format!("schedule entry {i} is not an array"))?;
        let (t, c) = match pair {
            [t, c] => (t, c),
            _ => return Err(format!("schedule entry {i} is not a pair")),
        };
        let thread = t
            .as_u64()
            .ok_or_else(|| format!("schedule entry {i} has a non-integer thread"))?;
        let choice = c
            .as_u64()
            .and_then(|c| u32::try_from(c).ok())
            .ok_or_else(|| format!("schedule entry {i} has a bad choice"))?;
        out.push(Decision {
            thread: ThreadId::new(thread as usize),
            choice,
        });
    }
    Ok(out)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value (the `Serialize` stand-in).
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::array(self.iter().map(ToJson::to_json))
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::array(self.iter().map(ToJson::to_json))
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
/// `impl_to_json!(CellResult { states, secs, completed, executions });`
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::object([
                    $((stringify!($field), $crate::json::ToJson::to_json(&self.$field))),+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty() {
        let v = Json::object([
            ("name", Json::Str("phil".into())),
            ("rows", Json::array([Json::UInt(1), Json::UInt(2)])),
            ("done", Json::Bool(true)),
            ("total", Json::Null),
        ]);
        let s = v.to_string_pretty();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"name\": \"phil\""));
        assert!(s.contains("\"rows\": [\n    1,\n    2\n  ]"));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd".into()).to_string_pretty();
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn exact_u64() {
        let big = u64::MAX;
        assert_eq!(Json::UInt(big).to_string_pretty(), big.to_string());
    }

    #[test]
    fn derive_macro_lists_fields() {
        struct P {
            x: u64,
            y: String,
        }
        impl_to_json!(P { x, y });
        let s = P {
            x: 7,
            y: "hi".into(),
        }
        .to_json()
        .to_string_pretty();
        assert!(s.contains("\"x\": 7"));
        assert!(s.contains("\"y\": \"hi\""));
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string_pretty(), "null");
        assert_eq!(Json::Float(1.5).to_string_pretty(), "1.5");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = Json::object([
            ("name", Json::Str("fair \"chess\"\n\ttest".into())),
            ("count", Json::UInt(42)),
            ("delta", Json::Int(-7)),
            ("ratio", Json::Float(0.25)),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "items",
                Json::array([Json::UInt(1), Json::UInt(2), Json::array([])]),
            ),
            ("empty", Json::Object(Vec::new())),
        ]);
        let text = doc.to_string_pretty();
        let back = Json::parse(&text).expect("writer output parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = Json::parse(r#""aA\n\\b\"π""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\\b\"π"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\": 1,}").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("troo").is_err());
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = Json::parse(r#"{"a": {"b": [1, true, "x"]}}"#).unwrap();
        let arr = doc.get("a").and_then(|a| a.get("b")).unwrap();
        let items = arr.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_bool(), Some(true));
        assert_eq!(items[2].as_str(), Some("x"));
        assert!(doc.get("zzz").is_none());
    }

    #[test]
    fn schedule_round_trips() {
        let schedule: Schedule = vec![
            Decision {
                thread: ThreadId::new(0),
                choice: 0,
            },
            Decision {
                thread: ThreadId::new(2),
                choice: 1,
            },
            Decision {
                thread: ThreadId::new(1),
                choice: 0,
            },
        ];
        let json = schedule_to_json(&schedule);
        let text = json.to_string_pretty();
        let back = schedule_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, schedule);
    }

    #[test]
    fn schedule_from_json_rejects_bad_shapes() {
        assert!(schedule_from_json(&Json::parse("{}").unwrap()).is_err());
        assert!(schedule_from_json(&Json::parse("[[1]]").unwrap()).is_err());
        assert!(schedule_from_json(&Json::parse("[[1, -2]]").unwrap()).is_err());
        assert!(schedule_from_json(&Json::parse("[[\"t\", 0]]").unwrap()).is_err());
    }
}
