//! A minimal JSON value type and serializer for persisting experiment
//! artifacts. The build environment cannot fetch `serde`/`serde_json`,
//! and the bench crate only ever *writes* JSON — a small hand-rolled
//! value tree plus the [`impl_to_json!`] macro covers that without a
//! derive dependency.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An unsigned integer (kept exact; u64 doesn't fit in f64).
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float, rendered with enough digits to round-trip.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// Pretty-prints with two-space indentation (the `serde_json`
    /// convention our previous artifacts used).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let closing_pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    let _ = write!(out, "{f}");
                } else {
                    // JSON has no NaN/Inf; serde_json emits null too.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                out.push_str(&closing_pad);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                out.push_str(&closing_pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into a [`Json`] value (the `Serialize` stand-in).
pub trait ToJson {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Json;
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::UInt(*self)
    }
}

impl ToJson for u32 {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::UInt(*self as u64)
    }
}

impl ToJson for i64 {
    fn to_json(&self) -> Json {
        Json::Int(*self)
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::array(self.iter().map(ToJson::to_json))
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::array(self.iter().map(ToJson::to_json))
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
/// `impl_to_json!(CellResult { states, secs, completed, executions });`
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::object([
                    $((stringify!($field), $crate::json::ToJson::to_json(&self.$field))),+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_pretty() {
        let v = Json::object([
            ("name", Json::Str("phil".into())),
            ("rows", Json::array([Json::UInt(1), Json::UInt(2)])),
            ("done", Json::Bool(true)),
            ("total", Json::Null),
        ]);
        let s = v.to_string_pretty();
        assert!(s.starts_with("{\n"));
        assert!(s.contains("\"name\": \"phil\""));
        assert!(s.contains("\"rows\": [\n    1,\n    2\n  ]"));
        assert!(s.ends_with('}'));
    }

    #[test]
    fn escapes_strings() {
        let s = Json::Str("a\"b\\c\nd".into()).to_string_pretty();
        assert_eq!(s, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn exact_u64() {
        let big = u64::MAX;
        assert_eq!(Json::UInt(big).to_string_pretty(), big.to_string());
    }

    #[test]
    fn derive_macro_lists_fields() {
        struct P {
            x: u64,
            y: String,
        }
        impl_to_json!(P { x, y });
        let s = P {
            x: 7,
            y: "hi".into(),
        }
        .to_json()
        .to_string_pretty();
        assert!(s.contains("\"x\": 7"));
        assert!(s.contains("\"y\": \"hi\""));
    }

    #[test]
    fn nonfinite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string_pretty(), "null");
        assert_eq!(Json::Float(1.5).to_string_pretty(), "1.5");
    }
}
