//! # chess-bench — regenerating every table and figure of the paper
//!
//! Each binary in `src/bin/` reproduces one artifact of the PLDI 2008
//! evaluation (Section 4); `repro` runs them all and writes text + JSON
//! into `results/`:
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig2` | Figure 2: nonterminating executions vs. depth bound |
//! | `table1` | Table 1: program characteristics |
//! | `table2` | Table 2: state coverage per strategy, fair vs. unfair |
//! | `fig5_fig6` | Figures 5–6: search time, fair vs. unfair (log scale) |
//! | `table3` | Table 3: executions/time to first bug, fair vs. unfair |
//! | `liveness` | §4.3: the good-samaritan violation and the Promise livelock |
//!
//! `bench` is not a paper artifact: it is the raw-speed harness behind
//! `results/BENCH_scaling.json`, the per-PR executions/sec trajectory of
//! the execution core (see [`perf`]).
//!
//! The Criterion benches in `benches/` measure the same experiments at
//! reduced scale plus the scheduler's microscopic overhead.
//!
//! Budgets: every potentially-unbounded search takes a wall-clock budget;
//! cells that hit it are marked with `*`, mirroring the paper's timeout
//! markers. Set `REPRO_BUDGET_SECS` to change the per-cell budget
//! (default 10 seconds; the paper used 5000).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod journal;
pub mod json;
pub mod output;
pub mod perf;

pub use experiments::*;
pub use journal::{
    checkpoint_from_json, checkpoint_to_json, read_journal, report_from_json, report_to_json,
    snapshot_from_json, snapshot_to_json, stats_from_json, stats_to_json, write_atomic,
    JournalWriter, WritePolicy, JOURNAL_VERSION,
};
pub use json::{schedule_from_json, schedule_to_json, Json, ToJson};
pub use output::*;
pub use perf::{
    check_against_baseline, peak_rss_kb, perf_matrix, serve_overhead_row, serve_worker_main,
    workload_names, PerfMode, PerfReport, PerfRow,
};
