//! The experiment harness: one function per table/figure of the paper's
//! evaluation, each returning serializable results.

use std::time::Duration;

use chess_core::strategy::{ContextBounded, Dfs, Strategy};
use chess_core::{Config, Explorer, ParallelExplorer, SearchOutcome};
use chess_kernel::{Capture, Kernel, ThreadId};
use chess_state::{preemption_bounded_states, CoverageTracker, StateGraph, StatefulLimits};
use chess_workloads::channels::{fifo_pipeline, ChannelBug, FifoConfig};
use chess_workloads::miniboot::{miniboot, BootConfig};
use chess_workloads::philosophers::{figure1, philosophers, PhilosophersConfig};
use chess_workloads::promise::{figure8, promises, PromiseConfig};
use chess_workloads::workerpool::{figure7, worker_pool, PoolConfig};
use chess_workloads::wsq::{wsq, WsqBug, WsqConfig};

use crate::impl_to_json;

/// Wall-clock budget applied to every potentially-unbounded search cell.
///
/// The paper used 5000 seconds per cell; the default here is 10, settable
/// via the `REPRO_BUDGET_SECS` environment variable.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Budget per search cell.
    pub per_cell: Duration,
}

impl Budget {
    /// Reads `REPRO_BUDGET_SECS` (default 10).
    pub fn from_env() -> Self {
        let secs = std::env::var("REPRO_BUDGET_SECS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10.0f64);
        Budget {
            per_cell: Duration::from_secs_f64(secs),
        }
    }

    /// A tiny budget for smoke tests and Criterion benches.
    pub fn quick() -> Self {
        Budget {
            per_cell: Duration::from_secs(2),
        }
    }
}

/// Result of one search cell.
#[derive(Debug, Clone, Copy)]
pub struct CellResult {
    /// Distinct states visited (when coverage was measured; 0 otherwise).
    pub states: usize,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Whether the strategy exhausted its search space within the budget
    /// (cells that did not are rendered with the paper's `*` marker).
    pub completed: bool,
    /// Executions explored.
    pub executions: u64,
}

impl_to_json!(CellResult {
    states,
    secs,
    completed,
    executions
});

impl CellResult {
    /// Renders `states` with the paper's timeout marker.
    pub fn states_str(&self) -> String {
        if self.completed {
            format!("{}", self.states)
        } else {
            format!("{}*", self.states)
        }
    }

    /// Renders the time with the timeout marker.
    pub fn secs_str(&self) -> String {
        if self.completed {
            format!("{:.2}", self.secs)
        } else {
            format!(">{:.0}", self.secs)
        }
    }
}

/// The search strategies of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// Context-bounded search with the given preemption bound.
    Cb(u32),
    /// Unbounded depth-first search.
    Dfs,
}

impl StrategyKind {
    /// The paper's row label.
    pub fn label(&self) -> String {
        match self {
            StrategyKind::Cb(b) => format!("cb={b}"),
            StrategyKind::Dfs => "dfs".to_string(),
        }
    }

    fn build(&self, horizon: Option<usize>) -> Box<dyn Strategy> {
        match (self, horizon) {
            (StrategyKind::Cb(b), None) => Box::new(ContextBounded::new(*b)),
            (StrategyKind::Cb(b), Some(db)) => Box::new(ContextBounded::with_horizon(*b, db)),
            (StrategyKind::Dfs, None) => Box::new(Dfs::new()),
            (StrategyKind::Dfs, Some(db)) => Box::new(Dfs::with_horizon(db)),
        }
    }
}

/// Runs one coverage-measured search cell.
fn coverage_cell<S, F>(
    factory: F,
    kind: StrategyKind,
    fair: bool,
    horizon: Option<usize>,
    depth_cap: usize,
    budget: Budget,
) -> CellResult
where
    S: Capture + Clone + 'static,
    F: Fn() -> Kernel<S>,
{
    let mut config = if fair {
        Config::fair()
    } else {
        Config::unfair()
    };
    config = config
        .with_detect_cycles(false)
        .with_depth_bound(depth_cap)
        .with_time_budget(budget.per_cell)
        .with_stop_on_error(true);
    let mut cov = CoverageTracker::new();
    let report = Explorer::new(factory, kind.build(horizon), config).run_observed(&mut cov);
    CellResult {
        states: cov.distinct_states(),
        secs: report.stats.wall.as_secs_f64(),
        completed: matches!(report.outcome, SearchOutcome::Complete),
        executions: report.stats.executions,
    }
}

// ---------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------

/// One point of Figure 2.
#[derive(Debug, Clone)]
pub struct Fig2Point {
    /// The depth bound.
    pub db: usize,
    /// Executions cut off at the depth bound — the paper's
    /// "nonterminating executions" metric.
    pub nonterminating: u64,
    /// Total executions explored.
    pub executions: u64,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Whether the full depth-bounded search was exhausted.
    pub completed: bool,
}

impl_to_json!(Fig2Point {
    db,
    nonterminating,
    executions,
    secs,
    completed
});

/// Figure 2: running depth-bounded stateless search (no fairness) on the
/// Figure 1 program, the number of nonterminating executions explodes
/// exponentially with the depth bound.
pub fn figure2(budget: Budget, dbs: &[usize]) -> Vec<Fig2Point> {
    dbs.iter()
        .map(|&db| {
            let config = Config::unfair()
                .with_depth_bound(db)
                .with_time_budget(budget.per_cell);
            let report = Explorer::new(figure1, Dfs::new(), config).run();
            Fig2Point {
                db,
                nonterminating: report.stats.nonterminating,
                executions: report.stats.executions,
                secs: report.stats.wall.as_secs_f64(),
                completed: matches!(report.outcome, SearchOutcome::Complete),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// One row of Table 1: program characteristics.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Program name.
    pub program: String,
    /// Lines of (workload) source code implementing it.
    pub loc: usize,
    /// Threads per execution.
    pub threads: usize,
    /// Synchronization operations per execution.
    pub sync_ops: u64,
}

impl_to_json!(Table1Row {
    program,
    loc,
    threads,
    sync_ops
});

/// Drives one representative execution to termination under a seeded
/// random fair schedule and returns the kernel for inspection.
fn one_random_fair<S: Capture + Clone>(mut k: Kernel<S>, cap: u64) -> Kernel<S> {
    let mut fair = chess_core::FairScheduler::new(k.thread_count());
    let mut rng: u64 = 0x5EED_CAFE;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut steps = 0u64;
    while chess_core::TransitionSystem::status(&k).is_running() && steps < cap {
        let es = k.enabled_set();
        let schedulable = fair.schedulable(&es);
        let options: Vec<ThreadId> = schedulable.iter().collect();
        let t = options[(next() % options.len() as u64) as usize];
        let kind = k.step(t, 0);
        let es_after = k.enabled_set();
        fair.grow(k.thread_count());
        fair.on_scheduled(t, &es, &es_after, kind.kind.is_yield());
        steps += 1;
    }
    k
}

/// Table 1: characteristics of the input programs (one representative
/// execution each).
pub fn table1() -> Vec<Table1Row> {
    fn row<S: Capture + Clone>(program: &str, loc: usize, k: Kernel<S>) -> Table1Row {
        let k = one_random_fair(k, 1_000_000);
        Table1Row {
            program: program.to_string(),
            loc,
            threads: k.thread_count(),
            sync_ops: k.stats().sync_ops,
        }
    }
    let lines = |src: &str| src.lines().count();
    vec![
        row(
            "Dining Philosophers",
            lines(include_str!("../../workloads/src/philosophers.rs")),
            philosophers(PhilosophersConfig::table2(3)),
        ),
        row(
            "Work-Stealing Queue",
            lines(include_str!("../../workloads/src/wsq.rs")),
            wsq(WsqConfig::table2(2)),
        ),
        row(
            "Promise",
            lines(include_str!("../../workloads/src/promise.rs")),
            promises(PromiseConfig::correct()),
        ),
        row(
            "Worker Pool (APE)",
            lines(include_str!("../../workloads/src/workerpool.rs")),
            worker_pool(PoolConfig {
                workers: 3,
                tasks: 6,
                buggy_idle: false,
            }),
        ),
        row(
            "Channels",
            lines(include_str!("../../workloads/src/channels.rs")),
            fifo_pipeline(FifoConfig::correct()),
        ),
        row(
            "Fifo (fan-in)",
            lines(include_str!("../../workloads/src/channels.rs")),
            fifo_pipeline(FifoConfig {
                items: 8,
                ..FifoConfig::correct_fanin()
            }),
        ),
        row(
            "Mini-OS boot (Singularity stand-in)",
            lines(include_str!("../../workloads/src/miniboot.rs")),
            miniboot(BootConfig::full()),
        ),
    ]
}

// ---------------------------------------------------------------------
// Table 2 and Figures 5–6
// ---------------------------------------------------------------------

/// One unfair (depth-bounded) cell of Table 2.
#[derive(Debug, Clone)]
pub struct UnfairCell {
    /// The backtracking horizon `db`.
    pub db: usize,
    /// The measured cell.
    pub cell: CellResult,
}

impl_to_json!(UnfairCell { db, cell });

/// One strategy row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Strategy label (`cb=1` … `dfs`).
    pub strategy: String,
    /// Stateful reference: total states reachable under this strategy.
    pub total: Option<usize>,
    /// The fair stateless search cell.
    pub fair: CellResult,
    /// The unfair depth-bounded cells, one per `db`.
    pub unfair: Vec<UnfairCell>,
}

impl_to_json!(Table2Row {
    strategy,
    total,
    fair,
    unfair
});

/// One subject (configuration) of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Subject {
    /// Subject name, e.g. "Dining Philosophers, 3 philosophers".
    pub name: String,
    /// One row per strategy.
    pub rows: Vec<Table2Row>,
}

impl_to_json!(Table2Subject { name, rows });

/// Runs the full Table 2 grid for one subject program.
pub fn table2_subject<S, F>(name: &str, factory: F, budget: Budget, dbs: &[usize]) -> Table2Subject
where
    S: Capture + Clone + 'static,
    F: Fn() -> Kernel<S> + Copy,
{
    let limits = StatefulLimits {
        max_states: 5_000_000,
    };
    let graph_total = StateGraph::build(&factory(), limits)
        .map(|g| g.state_count())
        .ok();
    let strategies = [
        StrategyKind::Cb(1),
        StrategyKind::Cb(2),
        StrategyKind::Cb(3),
        StrategyKind::Dfs,
    ];
    let rows = strategies
        .iter()
        .map(|&kind| {
            let total = match kind {
                StrategyKind::Cb(b) => preemption_bounded_states(&factory(), b, limits).ok(),
                StrategyKind::Dfs => graph_total,
            };
            let fair = coverage_cell(factory, kind, true, None, 100_000, budget);
            let unfair = dbs
                .iter()
                .map(|&db| UnfairCell {
                    db,
                    cell: coverage_cell(
                        factory,
                        kind,
                        false,
                        Some(db),
                        (db * 40).max(4_096),
                        budget,
                    ),
                })
                .collect();
            Table2Row {
                strategy: kind.label(),
                total,
                fair,
                unfair,
            }
        })
        .collect();
    Table2Subject {
        name: name.to_string(),
        rows,
    }
}

/// The four subjects of Table 2.
pub fn table2_all(budget: Budget, dbs: &[usize]) -> Vec<Table2Subject> {
    vec![
        table2_subject(
            "Dining Philosophers, 2 philosophers",
            || philosophers(PhilosophersConfig::table2(2)),
            budget,
            dbs,
        ),
        table2_subject(
            "Dining Philosophers, 3 philosophers",
            || philosophers(PhilosophersConfig::table2(3)),
            budget,
            dbs,
        ),
        table2_subject(
            "Work-Stealing Queue, 1 stealer",
            || wsq(WsqConfig::table2(1)),
            budget,
            dbs,
        ),
        table2_subject(
            "Work-Stealing Queue, 2 stealers",
            || wsq(WsqConfig::table2(2)),
            budget,
            dbs,
        ),
    ]
}

// ---------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------

/// Result of one bug hunt.
#[derive(Debug, Clone)]
pub struct FindResult {
    /// Whether the bug was found within the budget.
    pub found: bool,
    /// Executions explored until the bug (or until the budget).
    pub executions: u64,
    /// Wall-clock seconds.
    pub secs: f64,
}

impl_to_json!(FindResult {
    found,
    executions,
    secs
});

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// The seeded bug.
    pub bug: String,
    /// Fair context-bounded search (cb=2).
    pub with_fairness: FindResult,
    /// Unfair baseline: cb=2 with a backtracking horizon of db=250 and a
    /// random tail, as in the paper.
    pub without_fairness: FindResult,
}

impl_to_json!(Table3Row {
    bug,
    with_fairness,
    without_fairness
});

fn hunt<S, F>(factory: F, fair: bool, budget: Budget) -> FindResult
where
    S: Capture + Clone + 'static,
    F: Fn() -> Kernel<S>,
{
    let (config, strategy): (Config, Box<dyn Strategy>) = if fair {
        (
            Config::fair().with_detect_cycles(false),
            Box::new(ContextBounded::new(2)),
        )
    } else {
        (
            Config::unfair().with_depth_bound(4_096),
            Box::new(ContextBounded::with_horizon(2, 250)),
        )
    };
    let config = config.with_time_budget(budget.per_cell);
    let report = Explorer::new(factory, strategy, config).run();
    FindResult {
        found: report.outcome.found_error(),
        executions: report.stats.executions,
        secs: report.stats.wall.as_secs_f64(),
    }
}

/// Table 3: executions and time to find each seeded bug, with and
/// without fairness.
pub fn table3(budget: Budget) -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for (name, bug) in [
        (
            "WSQ bug 1 (unlocked conflict pop)",
            WsqBug::UnlockedConflictPop,
        ),
        (
            "WSQ bug 2 (unsynchronized steal)",
            WsqBug::UnsynchronizedSteal,
        ),
        ("WSQ bug 3 (lost tail restore)", WsqBug::LostTailRestore),
    ] {
        rows.push(Table3Row {
            bug: name.to_string(),
            with_fairness: hunt(move || wsq(WsqConfig::with_bug(bug)), true, budget),
            without_fairness: hunt(move || wsq(WsqConfig::with_bug(bug)), false, budget),
        });
    }
    for (name, bug) in [
        ("Channel bug 1 (credit leak)", ChannelBug::CreditLeak),
        ("Channel bug 2 (racy sequence)", ChannelBug::RacySequence),
        ("Channel bug 3 (eager shutdown)", ChannelBug::EagerShutdown),
        (
            "Channel bug 4 (draining shutdown)",
            ChannelBug::DrainingShutdown,
        ),
    ] {
        rows.push(Table3Row {
            bug: name.to_string(),
            with_fairness: hunt(
                move || fifo_pipeline(FifoConfig::with_bug(bug)),
                true,
                budget,
            ),
            without_fairness: hunt(
                move || fifo_pipeline(FifoConfig::with_bug(bug)),
                false,
                budget,
            ),
        });
    }
    rows
}

// ---------------------------------------------------------------------
// Section 4.3: liveness violations
// ---------------------------------------------------------------------

/// One liveness experiment.
#[derive(Debug, Clone)]
pub struct LivenessRow {
    /// The subject program.
    pub program: String,
    /// What the fair search reported.
    pub fair_outcome: String,
    /// Executions until the report.
    pub fair_executions: u64,
    /// Wall-clock seconds.
    pub fair_secs: f64,
    /// What the unfair baseline reported within the same budget (the
    /// paper's point: it has no livelock-detection capability at all).
    pub unfair_outcome: String,
}

impl_to_json!(LivenessRow {
    program,
    fair_outcome,
    fair_executions,
    fair_secs,
    unfair_outcome
});

/// §4.3: the worker-pool good-samaritan violation and the Promise
/// livelock, fair search vs. the unfair baseline.
pub fn liveness(budget: Budget) -> Vec<LivenessRow> {
    fn run<S, F>(program: &str, factory: F, budget: Budget) -> LivenessRow
    where
        S: Capture + Clone + 'static,
        F: Fn() -> Kernel<S> + Copy,
    {
        let config = Config::fair().with_time_budget(budget.per_cell);
        let fair = Explorer::new(factory, Dfs::new(), config).run();
        let unfair_config = Config::unfair()
            .with_depth_bound(4_096)
            .with_time_budget(budget.per_cell);
        let unfair = Explorer::new(factory, Dfs::with_horizon(250), unfair_config).run();
        LivenessRow {
            program: program.to_string(),
            fair_outcome: match &fair.outcome {
                SearchOutcome::Divergence(d) => d.kind.to_string(),
                o => format!("{o:?}"),
            },
            fair_executions: fair.stats.executions,
            fair_secs: fair.stats.wall.as_secs_f64(),
            unfair_outcome: match &unfair.outcome {
                SearchOutcome::Divergence(d) => d.kind.to_string(),
                SearchOutcome::Complete | SearchOutcome::BudgetExhausted(_) => format!(
                    "no error report; {} executions, {} cut at the depth bound",
                    unfair.stats.executions, unfair.stats.nonterminating
                ),
                o => format!("{o:?}"),
            },
        }
    }
    vec![
        run("Worker pool shutdown (Figure 7)", figure7, budget),
        run("Promise stale-read spin (Figure 8)", figure8, budget),
    ]
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §6)
// ---------------------------------------------------------------------

/// One ablation measurement.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The subject program.
    pub subject: String,
    /// The scheduler variant.
    pub variant: String,
    /// Distinct states covered.
    pub states: usize,
    /// Executions explored.
    pub executions: u64,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Whether the search completed within the budget.
    pub completed: bool,
}

impl_to_json!(AblationRow {
    subject,
    variant,
    states,
    executions,
    secs,
    completed
});

/// Ablation study: the paper's window-set penalty rule vs. naive
/// all-enabled penalization, and the `k`-yield parameterization — fair
/// cb=2 coverage runs on the two coverage subjects. The naive rule loses
/// states on the work-stealing queue; larger `k` buys nothing here and
/// costs executions.
pub fn ablation(budget: Budget) -> Vec<AblationRow> {
    use chess_core::PenaltyScope;

    fn subject<S, F>(name: &str, factory: F, budget: Budget) -> Vec<AblationRow>
    where
        S: Capture + Clone + 'static,
        F: Fn() -> Kernel<S> + Copy,
    {
        let variants: Vec<(String, Config)> = vec![
            ("paper (window sets, k=1)".to_string(), Config::fair()),
            (
                "naive penalty (all enabled)".to_string(),
                Config::fair().with_penalty_scope(PenaltyScope::AllEnabled),
            ),
            (
                "k=2 (every 2nd yield)".to_string(),
                Config::fair().with_fairness_k(2),
            ),
            (
                "k=4 (every 4th yield)".to_string(),
                Config::fair().with_fairness_k(4),
            ),
        ];
        let mut rows: Vec<AblationRow> = variants
            .into_iter()
            .map(|(variant, config)| {
                let config = config
                    .with_detect_cycles(false)
                    .with_time_budget(budget.per_cell);
                let mut cov = CoverageTracker::new();
                let report =
                    Explorer::new(factory, ContextBounded::new(2), config).run_observed(&mut cov);
                AblationRow {
                    subject: name.to_string(),
                    variant,
                    states: cov.distinct_states(),
                    executions: report.stats.executions,
                    secs: report.stats.wall.as_secs_f64(),
                    completed: matches!(report.outcome, SearchOutcome::Complete),
                }
            })
            .collect();
        // The Section 4 accounting ablation: charge fairness-forced
        // switches against the preemption budget (unsound).
        let config = Config::fair()
            .with_detect_cycles(false)
            .with_time_budget(budget.per_cell);
        let mut cov = CoverageTracker::new();
        let report = Explorer::new(
            factory,
            ContextBounded::new(2).charging_fairness_switches(),
            config,
        )
        .run_observed(&mut cov);
        rows.push(AblationRow {
            subject: name.to_string(),
            variant: "cb charges fairness switches (unsound)".to_string(),
            states: cov.distinct_states(),
            executions: report.stats.executions,
            secs: report.stats.wall.as_secs_f64(),
            completed: matches!(report.outcome, SearchOutcome::Complete),
        });
        rows
    }

    let mut rows = subject(
        "philosophers(3)",
        || philosophers(PhilosophersConfig::table2(3)),
        budget,
    );
    rows.extend(subject(
        "wsq(1 stealer)",
        || wsq(WsqConfig::table2(1)),
        budget,
    ));
    rows
}

// ---------------------------------------------------------------------
// Parallel scaling (DESIGN.md, parallel search)
// ---------------------------------------------------------------------

/// One parallel-scaling measurement: a fixed execution budget split
/// across `jobs` seed-sharded random-walk workers.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// The subject program.
    pub workload: String,
    /// Worker count.
    pub jobs: usize,
    /// Executions explored (the fixed budget; sanity check).
    pub executions: u64,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Wall-clock speedup relative to the 1-worker run.
    pub speedup: f64,
}

impl_to_json!(ScalingRow {
    workload,
    jobs,
    executions,
    secs,
    speedup
});

/// Parallel scaling of the random-walk search: the same execution budget
/// run with 1, 2, and 4 workers on bug-free subjects (no early stop, so
/// the wall-clock measures pure search throughput). Not a paper artifact
/// — the engine extension is documented in DESIGN.md.
pub fn scaling(executions_per_cell: u64, jobs_axis: &[usize]) -> Vec<ScalingRow> {
    fn subject<S, F>(
        name: &str,
        factory: F,
        executions: u64,
        jobs_axis: &[usize],
    ) -> Vec<ScalingRow>
    where
        S: Capture + Clone + 'static,
        F: Fn() -> Kernel<S> + Copy + Sync,
    {
        let config = Config::fair().with_max_executions(executions);
        let mut rows: Vec<ScalingRow> = jobs_axis
            .iter()
            .map(|&jobs| {
                let report = ParallelExplorer::new(factory, config.clone(), jobs).run_random(42);
                ScalingRow {
                    workload: name.to_string(),
                    jobs,
                    executions: report.stats.executions,
                    secs: report.stats.wall.as_secs_f64(),
                    speedup: 1.0,
                }
            })
            .collect();
        let base = rows[0].secs;
        for r in &mut rows {
            r.speedup = if r.secs > 0.0 { base / r.secs } else { 0.0 };
        }
        rows
    }

    let mut rows = subject(
        "philosophers(3)",
        || philosophers(PhilosophersConfig::table2(3)),
        executions_per_cell,
        jobs_axis,
    );
    rows.extend(subject(
        "wsq(2 stealers)",
        || wsq(WsqConfig::table2(2)),
        executions_per_cell,
        jobs_axis,
    ));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_is_monotone_in_db() {
        let points = figure2(Budget::quick(), &[12, 16]);
        assert_eq!(points.len(), 2);
        assert!(points[1].nonterminating >= points[0].nonterminating);
    }

    #[test]
    fn table1_counts_threads() {
        let rows = table1();
        assert_eq!(rows.len(), 7);
        let boot = rows.last().unwrap();
        assert_eq!(boot.threads, 14);
        assert!(boot.sync_ops > 50);
        assert!(rows.iter().all(|r| r.loc > 100));
    }

    #[test]
    fn cell_markers() {
        let done = CellResult {
            states: 5,
            secs: 1.0,
            completed: true,
            executions: 10,
        };
        assert_eq!(done.states_str(), "5");
        let cut = CellResult {
            completed: false,
            ..done
        };
        assert_eq!(cut.states_str(), "5*");
        assert!(cut.secs_str().starts_with('>'));
    }

    #[test]
    fn table3_quick_smoke_finds_easy_bug() {
        let r = hunt(
            || wsq(WsqConfig::with_bug(WsqBug::UnsynchronizedSteal)),
            true,
            Budget::quick(),
        );
        assert!(r.found);
    }

    #[test]
    fn ablation_paper_rule_dominates_naive() {
        let rows = ablation(Budget::quick());
        for group in rows.chunks(5) {
            let (paper, naive, charging) = (&group[0], &group[1], &group[4]);
            assert!(
                paper.states >= naive.states,
                "window sets should never cover less: {group:#?}"
            );
            assert!(
                paper.states >= charging.states,
                "unsound charging should never cover more: {group:#?}"
            );
        }
    }

    #[test]
    fn strategy_labels() {
        assert_eq!(StrategyKind::Cb(2).label(), "cb=2");
        assert_eq!(StrategyKind::Dfs.label(), "dfs");
    }
}
