//! Table 1: characteristics of the input programs — lines of workload
//! code, threads per execution, synchronization operations per execution.

use chess_bench::{persist, table1, TextTable, ToJson};

fn main() {
    let rows = table1();
    let mut t = TextTable::new(["Program", "LOC", "Threads", "Synch Ops"]);
    for r in &rows {
        t.row([
            r.program.clone(),
            r.loc.to_string(),
            r.threads.to_string(),
            r.sync_ops.to_string(),
        ]);
    }
    let text = t.render();
    println!("{text}");
    persist("table1", &text, &rows.to_json());
}
