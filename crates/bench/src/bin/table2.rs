//! Table 2: states visited for the context-bounded and depth-first
//! strategies, with and without fairness, on the two coverage subjects
//! (dining philosophers and the work-stealing queue, two configurations
//! each). Unfair search is pruned at a depth bound `db` and completed
//! with a random tail; `*` marks cells whose search did not finish
//! within the budget — both exactly as in the paper.

use chess_bench::{persist, table2_all, Budget, TextTable, ToJson};

fn main() {
    let budget = Budget::from_env();
    let dbs = [20usize, 30, 40, 50, 60];
    eprintln!(
        "table 2: 4 subjects x 4 strategies x (fair + {} unfair dbs), \
         budget {:?}/cell — this takes a while",
        dbs.len(),
        budget.per_cell
    );
    let subjects = table2_all(budget, &dbs);

    let mut text = String::new();
    for s in &subjects {
        text.push_str(&format!("\n== {} ==\n", s.name));
        let mut header = vec![
            "strategy".to_string(),
            "total".to_string(),
            "fair".to_string(),
        ];
        header.extend(dbs.iter().map(|db| format!("db={db}")));
        let mut t = TextTable::new(header);
        for row in &s.rows {
            let mut cells = vec![
                row.strategy.clone(),
                row.total.map_or("?".to_string(), |v| v.to_string()),
                row.fair.states_str(),
            ];
            cells.extend(row.unfair.iter().map(|u| u.cell.states_str()));
            t.row(cells);
        }
        text.push_str(&t.render());
    }
    println!("{text}");
    persist("table2", &text, &subjects.to_json());
}
