//! Figures 5 and 6: time to complete the state-space search for the
//! dining philosophers (3) and the work-stealing queue (2 stealers),
//! per strategy, fair vs. unfair with depth bounds 20–60 (log scale).
//! Fair search is exponentially faster without sacrificing coverage.

use chess_bench::{log_bars, persist, table2_subject, Budget, Table2Subject, ToJson};
use chess_workloads::philosophers::{philosophers, PhilosophersConfig};
use chess_workloads::wsq::{wsq, WsqConfig};

fn render(subject: &Table2Subject) -> String {
    let mut text = format!(
        "\n== {} — time to complete search (seconds) ==\n",
        subject.name
    );
    for row in &subject.rows {
        text.push_str(&format!("\n[{}]\n", row.strategy));
        let mut pts = vec![("fair".to_string(), row.fair.secs.max(1e-6))];
        for u in &row.unfair {
            pts.push((
                format!("nf db={}{}", u.db, if u.cell.completed { "" } else { " *" }),
                u.cell.secs.max(1e-6),
            ));
        }
        text.push_str(&log_bars(&pts, "s"));
    }
    text
}

fn main() {
    let budget = Budget::from_env();
    let dbs = [20usize, 30, 40, 50, 60];
    eprintln!(
        "figures 5/6: phil(3) and wsq(2), budget {:?}/cell",
        budget.per_cell
    );
    let fig5 = table2_subject(
        "Figure 5: Dining philosophers (3)",
        || philosophers(PhilosophersConfig::table2(3)),
        budget,
        &dbs,
    );
    let fig6 = table2_subject(
        "Figure 6: Work-stealing queue (2 stealers)",
        || wsq(WsqConfig::table2(2)),
        budget,
        &dbs,
    );
    let text = format!("{}{}", render(&fig5), render(&fig6));
    println!("{text}");
    persist(
        "fig5_fig6",
        &text,
        &chess_bench::Json::array([fig5.to_json(), fig6.to_json()]),
    );
}
