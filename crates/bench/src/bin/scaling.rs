//! Parallel scaling of the random-walk search: a fixed execution budget
//! split across 1, 2, and 4 seed-sharded workers on bug-free subjects.
//! Not a paper artifact — it validates the `ParallelExplorer` extension
//! (DESIGN.md). Set `SCALING_EXECUTIONS` to change the budget
//! (default 20000 executions per cell).

use chess_bench::{persist, scaling, TextTable, ToJson};

fn main() {
    let executions = std::env::var("SCALING_EXECUTIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);
    let rows = scaling(executions, &[1, 2, 4]);
    let mut t = TextTable::new(["Workload", "jobs", "execs", "time s", "speedup"]);
    for r in &rows {
        t.row([
            r.workload.clone(),
            r.jobs.to_string(),
            r.executions.to_string(),
            format!("{:.2}", r.secs),
            format!("{:.2}x", r.speedup),
        ]);
    }
    let text = t.render();
    println!("{text}");
    persist("scaling", &text, &rows.to_json());
}
