//! Runs the complete reproduction — every table and figure — and writes
//! all artifacts into `results/`. Budget per search cell comes from
//! `REPRO_BUDGET_SECS` (default 10; the paper used 5000).

use std::process::Command;

fn main() {
    let exes = [
        "table1",
        "fig2",
        "table2",
        "fig5_fig6",
        "table3",
        "liveness",
        "ablation",
        "scaling",
    ];
    // Re-exec the sibling binaries so each experiment is isolated and
    // this binary stays a thin driver.
    let me = std::env::current_exe().expect("current_exe");
    let dir = me.parent().expect("bin dir").to_path_buf();
    for exe in exes {
        println!("\n########## {exe} ##########");
        let status = Command::new(dir.join(exe))
            .status()
            .unwrap_or_else(|e| panic!("failed to run {exe}: {e}"));
        if !status.success() {
            eprintln!("{exe} exited with {status}");
        }
    }
    println!("\nall artifacts written to results/");
}
