//! The raw-speed bench harness: runs the perf workload matrix (see
//! `chess_bench::perf`) under both the fast and the reference execution
//! paths for a fixed wall budget per cell, prints the table, and writes
//! `results/BENCH_scaling.{txt,json}`.
//!
//! Usage:
//!
//! ```text
//! bench [--budget-ms N] [--check BASELINE.json] [--tolerance F]
//! ```
//!
//! * `--budget-ms N` — wall budget per cell in milliseconds (default
//!   2000; `BENCH_BUDGET_MS` is the env equivalent, the flag wins).
//! * `--check BASELINE.json` — after measuring, compare the fast-path
//!   executions/sec against the given baseline report (normally the
//!   `results/BENCH_scaling.json` checked into the repo) and exit
//!   nonzero if any workload regressed more than the tolerance.
//! * `--tolerance F` — allowed fractional regression for `--check`
//!   (default 0.30, i.e. fail below 70% of the baseline rate).
//!
//! The matrix also carries a `"serve"` row: the philosophers subject
//! driven through a process pool (this binary re-execed with the hidden
//! `--worker` flag), pricing the campaign runner's isolation overhead.
//! The baseline gate ignores it — spawn costs are machine noise.

use std::process::ExitCode;
use std::time::Duration;

use chess_bench::{
    check_against_baseline, perf_matrix, persist, serve_overhead_row, serve_worker_main, Json,
    PerfReport,
};

struct Args {
    budget_ms: u64,
    check: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        budget_ms: std::env::var("BENCH_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(2000),
        check: None,
        tolerance: 0.30,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--budget-ms" => {
                args.budget_ms = value("--budget-ms")?
                    .parse()
                    .map_err(|e| format!("--budget-ms: {e}"))?;
            }
            "--check" => args.check = Some(value("--check")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn load_baseline(path: &str) -> Result<PerfReport, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("baseline {path}: {e}"))?;
    PerfReport::from_json(&json)
}

fn main() -> ExitCode {
    // Hidden worker mode: the serve cell re-execs this binary as its
    // pool workers.
    if std::env::args().nth(1).as_deref() == Some("--worker") {
        serve_worker_main();
        return ExitCode::SUCCESS;
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Load the baseline FIRST: when --check points at the same path
    // persist() writes (the usual `results/BENCH_scaling.json`), reading
    // it after the rewrite would compare the run against itself and the
    // gate would never fire.
    let baseline = match &args.check {
        Some(path) => match load_baseline(path) {
            Ok(b) => Some((path.clone(), b)),
            Err(e) => {
                eprintln!("bench: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let budget = Duration::from_millis(args.budget_ms);
    let mut report = perf_matrix(budget);
    match std::env::current_exe() {
        Ok(exe) => report
            .rows
            .push(serve_overhead_row(budget, 2, exe, vec!["--worker".into()])),
        Err(e) => eprintln!("bench: skipping serve cell (cannot locate own executable: {e})"),
    }
    let report = report;
    let text = report.render();
    println!("{text}");
    persist("BENCH_scaling", &text, &report.to_json());

    let Some((baseline_path, baseline)) = baseline else {
        return ExitCode::SUCCESS;
    };
    match check_against_baseline(&report, &baseline, args.tolerance) {
        Ok(lines) => {
            println!("baseline check passed ({baseline_path}):");
            for line in lines {
                println!("  {line}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench: {e}");
            ExitCode::FAILURE
        }
    }
}
