//! The raw-speed bench harness: runs the perf workload matrix (see
//! `chess_bench::perf`) under both the fast and the reference execution
//! paths for a fixed wall budget per cell, prints the table, and writes
//! `results/BENCH_scaling.{txt,json}`.
//!
//! Usage:
//!
//! ```text
//! bench [--budget-ms N] [--check BASELINE.json] [--tolerance F]
//! ```
//!
//! * `--budget-ms N` — wall budget per cell in milliseconds (default
//!   2000; `BENCH_BUDGET_MS` is the env equivalent, the flag wins).
//! * `--check BASELINE.json` — after measuring, compare the fast-path
//!   executions/sec against the given baseline report (normally the
//!   `results/BENCH_scaling.json` checked into the repo) and exit
//!   nonzero if any workload regressed more than the tolerance.
//! * `--tolerance F` — allowed fractional regression for `--check`
//!   (default 0.30, i.e. fail below 70% of the baseline rate).

use std::process::ExitCode;
use std::time::Duration;

use chess_bench::{check_against_baseline, perf_matrix, persist, Json, PerfReport};

struct Args {
    budget_ms: u64,
    check: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        budget_ms: std::env::var("BENCH_BUDGET_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(2000),
        check: None,
        tolerance: 0.30,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--budget-ms" => {
                args.budget_ms = value("--budget-ms")?
                    .parse()
                    .map_err(|e| format!("--budget-ms: {e}"))?;
            }
            "--check" => args.check = Some(value("--check")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn load_baseline(path: &str) -> Result<PerfReport, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("baseline {path}: {e}"))?;
    PerfReport::from_json(&json)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = perf_matrix(Duration::from_millis(args.budget_ms));
    let text = report.render();
    println!("{text}");
    persist("BENCH_scaling", &text, &report.to_json());

    let Some(baseline_path) = args.check else {
        return ExitCode::SUCCESS;
    };
    let baseline = match load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check_against_baseline(&report, &baseline, args.tolerance) {
        Ok(lines) => {
            println!("baseline check passed ({baseline_path}):");
            for line in lines {
                println!("  {line}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bench: {e}");
            ExitCode::FAILURE
        }
    }
}
