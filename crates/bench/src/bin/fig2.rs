//! Figure 2: the number of nonterminating executions explored by
//! depth-bounded stateless search (no fairness) grows exponentially with
//! the depth bound, on the Figure 1 dining-philosophers program.

use chess_bench::{figure2, log_bars, persist, Budget, TextTable, ToJson};

fn main() {
    let budget = Budget::from_env();
    let dbs = [15usize, 20, 25, 30, 35, 40];
    eprintln!(
        "figure 2: unfair depth-bounded DFS on Figure 1, db in {dbs:?} \
         (budget {:?}/cell)",
        budget.per_cell
    );
    let points = figure2(budget, &dbs);

    let mut t = TextTable::new([
        "depth bound",
        "nonterminating execs",
        "total execs",
        "time (s)",
    ]);
    for p in &points {
        t.row([
            p.db.to_string(),
            format!("{}{}", p.nonterminating, if p.completed { "" } else { "*" }),
            p.executions.to_string(),
            format!("{:.2}", p.secs),
        ]);
    }
    let bars = log_bars(
        &points
            .iter()
            .map(|p| (format!("db={}", p.db), p.nonterminating as f64))
            .collect::<Vec<_>>(),
        "nonterminating executions (log scale)",
    );
    let text = format!("{}\n{}", t.render(), bars);
    println!("{text}");
    persist("fig2", &text, &points.to_json());
}
