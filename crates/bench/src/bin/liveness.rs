//! §4.3: the two liveness violations — the worker pool's good-samaritan
//! violation (Figure 7) and the Promise livelock (Figure 8) — found by
//! the fair search, and the unfair baseline's inability to report either.

use chess_bench::{liveness, persist, Budget, TextTable, ToJson};

fn main() {
    let budget = Budget::from_env();
    let rows = liveness(budget);
    let mut t = TextTable::new([
        "Program",
        "Fair search",
        "execs",
        "time s",
        "Unfair baseline",
    ]);
    for r in &rows {
        t.row([
            r.program.clone(),
            r.fair_outcome.clone(),
            r.fair_executions.to_string(),
            format!("{:.2}", r.fair_secs),
            r.unfair_outcome.clone(),
        ]);
    }
    let text = t.render();
    println!("{text}");
    persist("liveness", &text, &rows.to_json());
}
