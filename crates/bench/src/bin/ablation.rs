//! Ablation study (DESIGN.md §6): the paper's window-set penalty rule
//! versus naive all-enabled penalization, and the `k`-yield parameter —
//! showing why Algorithm 1's careful `H = (E ∪ D) \ S` matters for
//! coverage.

use chess_bench::{ablation, persist, Budget, TextTable, ToJson};

fn main() {
    let budget = Budget::from_env();
    eprintln!(
        "ablation: fair cb=2 coverage, budget {:?}/cell",
        budget.per_cell
    );
    let rows = ablation(budget);
    let mut t = TextTable::new(["Subject", "Variant", "states", "execs", "time s"]);
    for r in &rows {
        t.row([
            r.subject.clone(),
            r.variant.clone(),
            format!("{}{}", r.states, if r.completed { "" } else { "*" }),
            r.executions.to_string(),
            format!("{:.2}", r.secs),
        ]);
    }
    let text = t.render();
    println!("{text}");
    persist("ablation", &text, &rows.to_json());
}
