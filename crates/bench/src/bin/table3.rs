//! Table 3: number of executions and time required to find the seeded
//! bugs in the work-stealing queue and the channel pipeline, with and
//! without fairness. The unfair baseline uses the paper's configuration:
//! preemption bound 2, backtracking horizon db=250, random tail.

use chess_bench::{persist, table3, Budget, TextTable, ToJson};

fn main() {
    let budget = Budget::from_env();
    eprintln!(
        "table 3: 7 bugs x 2 searches, budget {:?}/cell",
        budget.per_cell
    );
    let rows = table3(budget);

    let mut t = TextTable::new([
        "Bug",
        "execs (fair)",
        "execs (unfair)",
        "time s (fair)",
        "time s (unfair)",
    ]);
    for r in &rows {
        let unfair_execs = if r.without_fairness.found {
            r.without_fairness.executions.to_string()
        } else {
            "-".to_string()
        };
        let unfair_secs = if r.without_fairness.found {
            format!("{:.2}", r.without_fairness.secs)
        } else {
            format!(">{:.0}", r.without_fairness.secs)
        };
        t.row([
            r.bug.clone(),
            r.with_fairness.executions.to_string(),
            unfair_execs,
            format!("{:.2}", r.with_fairness.secs),
            unfair_secs,
        ]);
    }
    let text = t.render();
    println!("{text}");
    persist("table3", &text, &rows.to_json());
}
