//! Crash-safe search journals.
//!
//! A journal is a single JSON file that captures everything needed to
//! resume an interrupted search: the strategy's [`StrategySnapshot`]
//! (DFS/CB frontier stack or random-walk RNG state), the cumulative
//! [`SearchStats`] at the last execution boundary, and whatever run-level
//! context the caller embeds alongside (the CLI stores its workload and
//! flag set; the fuzz campaign stores its shard cursor).
//!
//! Writes are **atomic**: the document is serialized to `<path>.tmp` in
//! the same directory, fsynced, and renamed over the target, so a crash
//! — even `SIGKILL` — leaves either the previous complete journal or the
//! new complete journal, never a torn file. Transient write failures
//! (`ENOSPC`, `EINTR`, …) are retried with exponential backoff; after
//! [`WritePolicy::max_failures`] *consecutive* failed checkpoints the
//! writer degrades to in-memory-only mode and records a warning the
//! final report surfaces, rather than aborting or stalling the search.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

use chess_core::{
    BudgetKind, Counterexample, CounterexampleKind, Divergence, DivergenceKind, FrameSnapshot,
    SearchCheckpoint, SearchOutcome, SearchReport, SearchStats, StrategySnapshot,
};
use chess_kernel::ThreadId;

use crate::json::{schedule_from_json, schedule_to_json, Json};

/// Journal format version, bumped on incompatible layout changes.
pub const JOURNAL_VERSION: u64 = 1;

// ---------------------------------------------------------------------
// Codecs
// ---------------------------------------------------------------------

/// Serializes cumulative search statistics.
pub fn stats_to_json(stats: &SearchStats) -> Json {
    Json::object([
        ("executions", Json::UInt(stats.executions)),
        ("transitions", Json::UInt(stats.transitions)),
        ("terminating", Json::UInt(stats.terminating)),
        ("nonterminating", Json::UInt(stats.nonterminating)),
        ("abandoned", Json::UInt(stats.abandoned)),
        ("deadlocks", Json::UInt(stats.deadlocks)),
        ("violations", Json::UInt(stats.violations)),
        ("divergences", Json::UInt(stats.divergences)),
        ("fair_cycles", Json::UInt(stats.fair_cycles)),
        ("unfair_cycles", Json::UInt(stats.unfair_cycles)),
        ("panics", Json::UInt(stats.panics)),
        ("worker_restarts", Json::UInt(stats.worker_restarts)),
        ("lost_to_restart", Json::UInt(stats.lost_to_restart)),
        (
            "first_error_execution",
            match stats.first_error_execution {
                Some(n) => Json::UInt(n),
                None => Json::Null,
            },
        ),
        ("max_depth", Json::UInt(stats.max_depth as u64)),
        ("wall_nanos", Json::UInt(stats.wall.as_nanos() as u64)),
    ])
}

fn field_u64(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("journal: missing or non-integer field '{key}'"))
}

/// Parses statistics serialized by [`stats_to_json`].
///
/// # Errors
///
/// Returns a message naming the first missing or ill-typed field.
pub fn stats_from_json(json: &Json) -> Result<SearchStats, String> {
    Ok(SearchStats {
        executions: field_u64(json, "executions")?,
        transitions: field_u64(json, "transitions")?,
        terminating: field_u64(json, "terminating")?,
        nonterminating: field_u64(json, "nonterminating")?,
        abandoned: field_u64(json, "abandoned")?,
        deadlocks: field_u64(json, "deadlocks")?,
        violations: field_u64(json, "violations")?,
        divergences: field_u64(json, "divergences")?,
        fair_cycles: field_u64(json, "fair_cycles")?,
        unfair_cycles: field_u64(json, "unfair_cycles")?,
        panics: field_u64(json, "panics")?,
        worker_restarts: field_u64(json, "worker_restarts")?,
        // Added after JOURNAL_VERSION 1 shipped; journals written before
        // it simply have no lost work on record, so parse leniently.
        lost_to_restart: json
            .get("lost_to_restart")
            .map(|v| v.as_u64().ok_or("journal: bad field 'lost_to_restart'"))
            .transpose()?
            .unwrap_or(0),
        first_error_execution: match json.get("first_error_execution") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_u64()
                    .ok_or("journal: bad field 'first_error_execution'")?,
            ),
        },
        max_depth: field_u64(json, "max_depth")? as usize,
        wall: Duration::from_nanos(field_u64(json, "wall_nanos")?),
    })
}

fn rng_to_json(rng: &[u64; 4]) -> Json {
    Json::array(rng.iter().map(|&w| Json::UInt(w)))
}

fn rng_from_json(json: &Json) -> Result<[u64; 4], String> {
    let words = json
        .as_array()
        .ok_or("journal: rng state is not an array")?;
    if words.len() != 4 {
        return Err(format!(
            "journal: rng state has {} words, not 4",
            words.len()
        ));
    }
    let mut out = [0u64; 4];
    for (i, w) in words.iter().enumerate() {
        out[i] = w.as_u64().ok_or("journal: non-integer rng word")?;
    }
    Ok(out)
}

fn frames_to_json(stack: &[FrameSnapshot]) -> Json {
    Json::array(stack.iter().map(|f| {
        Json::object([
            ("options", schedule_to_json(&f.options)),
            ("index", Json::UInt(f.index as u64)),
        ])
    }))
}

fn frames_from_json(json: &Json) -> Result<Vec<FrameSnapshot>, String> {
    let items = json
        .as_array()
        .ok_or("journal: frame stack is not an array")?;
    let mut out = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let options = schedule_from_json(
            item.get("options")
                .ok_or_else(|| format!("journal: frame {i} has no options"))?,
        )?;
        let index = field_u64(item, "index")? as usize;
        out.push(FrameSnapshot { options, index });
    }
    Ok(out)
}

fn opt_usize_to_json(v: Option<usize>) -> Json {
    match v {
        Some(n) => Json::UInt(n as u64),
        None => Json::Null,
    }
}

fn opt_usize_from_json(json: Option<&Json>) -> Result<Option<usize>, String> {
    match json {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or("journal: bad optional integer".into()),
    }
}

/// Serializes a strategy snapshot (tagged by `kind`).
pub fn snapshot_to_json(snapshot: &StrategySnapshot) -> Json {
    match snapshot {
        StrategySnapshot::Dfs {
            stack,
            horizon,
            rng,
            prefer_continuation,
        } => Json::object([
            ("kind", Json::Str("dfs".into())),
            ("stack", frames_to_json(stack)),
            ("horizon", opt_usize_to_json(*horizon)),
            ("rng", rng_to_json(rng)),
            ("prefer_continuation", Json::Bool(*prefer_continuation)),
        ]),
        StrategySnapshot::Cb {
            bound,
            budget,
            stack,
            horizon,
            rng,
            charge_fairness_switches,
        } => Json::object([
            ("kind", Json::Str("cb".into())),
            ("bound", Json::UInt(u64::from(*bound))),
            ("budget", Json::UInt(u64::from(*budget))),
            ("stack", frames_to_json(stack)),
            ("horizon", opt_usize_to_json(*horizon)),
            ("rng", rng_to_json(rng)),
            (
                "charge_fairness_switches",
                Json::Bool(*charge_fairness_switches),
            ),
        ]),
        StrategySnapshot::Random { seed, rng } => Json::object([
            ("kind", Json::Str("random".into())),
            ("seed", Json::UInt(*seed)),
            ("rng", rng_to_json(rng)),
        ]),
    }
}

/// Parses a snapshot serialized by [`snapshot_to_json`].
///
/// # Errors
///
/// Returns a message naming the unknown kind or the first bad field.
pub fn snapshot_from_json(json: &Json) -> Result<StrategySnapshot, String> {
    let kind = json
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("journal: snapshot has no kind")?;
    let stack = |j: &Json| frames_from_json(j.get("stack").unwrap_or(&Json::Array(Vec::new())));
    match kind {
        "dfs" => Ok(StrategySnapshot::Dfs {
            stack: stack(json)?,
            horizon: opt_usize_from_json(json.get("horizon"))?,
            rng: rng_from_json(json.get("rng").ok_or("journal: dfs snapshot has no rng")?)?,
            prefer_continuation: json
                .get("prefer_continuation")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        }),
        "cb" => Ok(StrategySnapshot::Cb {
            bound: field_u64(json, "bound")? as u32,
            budget: field_u64(json, "budget")? as u32,
            stack: stack(json)?,
            horizon: opt_usize_from_json(json.get("horizon"))?,
            rng: rng_from_json(json.get("rng").ok_or("journal: cb snapshot has no rng")?)?,
            charge_fairness_switches: json
                .get("charge_fairness_switches")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        }),
        "random" => Ok(StrategySnapshot::Random {
            seed: field_u64(json, "seed")?,
            rng: rng_from_json(
                json.get("rng")
                    .ok_or("journal: random snapshot has no rng")?,
            )?,
        }),
        other => Err(format!("journal: unknown snapshot kind '{other}'")),
    }
}

/// Serializes a whole explorer checkpoint (version + strategy + stats).
pub fn checkpoint_to_json(ckpt: &SearchCheckpoint) -> Json {
    Json::object([
        ("version", Json::UInt(JOURNAL_VERSION)),
        ("strategy", snapshot_to_json(&ckpt.strategy)),
        ("stats", stats_to_json(&ckpt.stats)),
    ])
}

/// Parses a checkpoint serialized by [`checkpoint_to_json`].
///
/// # Errors
///
/// Rejects unknown versions and malformed strategy or stats sections.
pub fn checkpoint_from_json(json: &Json) -> Result<SearchCheckpoint, String> {
    let version = field_u64(json, "version")?;
    if version != JOURNAL_VERSION {
        return Err(format!(
            "journal: version {version} is not supported (expected {JOURNAL_VERSION})"
        ));
    }
    Ok(SearchCheckpoint {
        strategy: snapshot_from_json(json.get("strategy").ok_or("journal: no strategy section")?)?,
        stats: stats_from_json(json.get("stats").ok_or("journal: no stats section")?)?,
    })
}

// ---------------------------------------------------------------------
// Search-report codec
// ---------------------------------------------------------------------

fn counterexample_to_json(c: &Counterexample) -> Json {
    Json::object([
        ("message", Json::Str(c.message.clone())),
        ("schedule", schedule_to_json(&c.schedule)),
        ("execution", Json::UInt(c.execution)),
    ])
}

fn counterexample_from_json(
    json: &Json,
    kind: CounterexampleKind,
) -> Result<Counterexample, String> {
    Ok(Counterexample {
        kind,
        message: json
            .get("message")
            .and_then(Json::as_str)
            .ok_or("report: counterexample has no message")?
            .to_string(),
        schedule: schedule_from_json(
            json.get("schedule")
                .ok_or("report: counterexample has no schedule")?,
        )?,
        execution: field_u64(json, "execution")?,
    })
}

fn divergence_to_json(d: &Divergence) -> Json {
    let kind = match &d.kind {
        DivergenceKind::FairCycle {
            cycle_start,
            cycle_len,
        } => Json::object([
            ("kind", Json::Str("fair_cycle".into())),
            ("cycle_start", Json::UInt(*cycle_start as u64)),
            ("cycle_len", Json::UInt(*cycle_len as u64)),
        ]),
        DivergenceKind::UnfairCycle {
            cycle_start,
            cycle_len,
            starved,
        } => Json::object([
            ("kind", Json::Str("unfair_cycle".into())),
            ("cycle_start", Json::UInt(*cycle_start as u64)),
            ("cycle_len", Json::UInt(*cycle_len as u64)),
            ("starved", Json::UInt(starved.index() as u64)),
        ]),
        DivergenceKind::GoodSamaritanSuspect {
            thread,
            steps_without_yield,
        } => Json::object([
            ("kind", Json::Str("gs_suspect".into())),
            ("thread", Json::UInt(thread.index() as u64)),
            ("steps_without_yield", Json::UInt(*steps_without_yield)),
        ]),
        DivergenceKind::LivelockSuspect => {
            Json::object([("kind", Json::Str("livelock_suspect".into()))])
        }
    };
    Json::object([
        ("divergence", kind),
        ("schedule", schedule_to_json(&d.schedule)),
        ("execution", Json::UInt(d.execution)),
    ])
}

fn divergence_from_json(json: &Json) -> Result<Divergence, String> {
    let k = json
        .get("divergence")
        .ok_or("report: divergence has no kind object")?;
    let kind = match k.get("kind").and_then(Json::as_str) {
        Some("fair_cycle") => DivergenceKind::FairCycle {
            cycle_start: field_u64(k, "cycle_start")? as usize,
            cycle_len: field_u64(k, "cycle_len")? as usize,
        },
        Some("unfair_cycle") => DivergenceKind::UnfairCycle {
            cycle_start: field_u64(k, "cycle_start")? as usize,
            cycle_len: field_u64(k, "cycle_len")? as usize,
            starved: ThreadId::new(field_u64(k, "starved")? as usize),
        },
        Some("gs_suspect") => DivergenceKind::GoodSamaritanSuspect {
            thread: ThreadId::new(field_u64(k, "thread")? as usize),
            steps_without_yield: field_u64(k, "steps_without_yield")?,
        },
        Some("livelock_suspect") => DivergenceKind::LivelockSuspect,
        other => return Err(format!("report: unknown divergence kind {other:?}")),
    };
    Ok(Divergence {
        kind,
        schedule: schedule_from_json(
            json.get("schedule")
                .ok_or("report: divergence has no schedule")?,
        )?,
        execution: field_u64(json, "execution")?,
    })
}

fn budget_to_str(kind: BudgetKind) -> &'static str {
    match kind {
        BudgetKind::Executions => "executions",
        BudgetKind::Time => "time",
        BudgetKind::Cancelled => "cancelled",
        BudgetKind::WorkerPanicked => "worker_panicked",
    }
}

fn outcome_to_json(outcome: &SearchOutcome) -> Json {
    match outcome {
        SearchOutcome::Complete => Json::object([("kind", Json::Str("complete".into()))]),
        SearchOutcome::SafetyViolation(c) => Json::object([
            ("kind", Json::Str("safety_violation".into())),
            ("counterexample", counterexample_to_json(c)),
        ]),
        SearchOutcome::Deadlock(c) => Json::object([
            ("kind", Json::Str("deadlock".into())),
            ("counterexample", counterexample_to_json(c)),
        ]),
        SearchOutcome::Panic(c) => Json::object([
            ("kind", Json::Str("panic".into())),
            ("counterexample", counterexample_to_json(c)),
        ]),
        SearchOutcome::Divergence(d) => Json::object([
            ("kind", Json::Str("divergence".into())),
            ("divergence", divergence_to_json(d)),
        ]),
        SearchOutcome::BudgetExhausted(k) => Json::object([
            ("kind", Json::Str("budget_exhausted".into())),
            ("budget", Json::Str(budget_to_str(*k).into())),
        ]),
    }
}

fn outcome_from_json(json: &Json) -> Result<SearchOutcome, String> {
    let kind = json
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("report: outcome has no kind")?;
    let cex = |k: CounterexampleKind| {
        counterexample_from_json(
            json.get("counterexample")
                .ok_or("report: outcome has no counterexample")?,
            k,
        )
    };
    match kind {
        "complete" => Ok(SearchOutcome::Complete),
        "safety_violation" => Ok(SearchOutcome::SafetyViolation(cex(
            CounterexampleKind::Safety,
        )?)),
        "deadlock" => Ok(SearchOutcome::Deadlock(cex(CounterexampleKind::Deadlock)?)),
        "panic" => Ok(SearchOutcome::Panic(cex(CounterexampleKind::Panic)?)),
        "divergence" => Ok(SearchOutcome::Divergence(divergence_from_json(
            json.get("divergence")
                .ok_or("report: outcome has no divergence")?,
        )?)),
        "budget_exhausted" => match json.get("budget").and_then(Json::as_str) {
            Some("executions") => Ok(SearchOutcome::BudgetExhausted(BudgetKind::Executions)),
            Some("time") => Ok(SearchOutcome::BudgetExhausted(BudgetKind::Time)),
            Some("cancelled") => Ok(SearchOutcome::BudgetExhausted(BudgetKind::Cancelled)),
            Some("worker_panicked") => {
                Ok(SearchOutcome::BudgetExhausted(BudgetKind::WorkerPanicked))
            }
            other => Err(format!("report: unknown budget kind {other:?}")),
        },
        other => Err(format!("report: unknown outcome kind '{other}'")),
    }
}

/// Serializes a whole [`SearchReport`] — outcome (with counterexample or
/// divergence evidence, schedules included) plus statistics. This is how
/// shard workers ship their full reports to the campaign daemon, which
/// merges them with `chess_core::merge_contiguous_shards` /
/// `merge_seed_shards` into the report of the unsharded search.
pub fn report_to_json(report: &SearchReport) -> Json {
    Json::object([
        ("outcome", outcome_to_json(&report.outcome)),
        ("stats", stats_to_json(&report.stats)),
    ])
}

/// Parses a report serialized by [`report_to_json`].
///
/// # Errors
///
/// Returns a message naming the first missing or ill-typed field.
pub fn report_from_json(json: &Json) -> Result<SearchReport, String> {
    Ok(SearchReport {
        outcome: outcome_from_json(json.get("outcome").ok_or("report: no outcome section")?)?,
        stats: stats_from_json(json.get("stats").ok_or("report: no stats section")?)?,
    })
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Retry and degradation policy of a [`JournalWriter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WritePolicy {
    /// Retries per write attempt (beyond the first try).
    pub retries: u32,
    /// Base backoff between retries, doubled each time.
    pub backoff: Duration,
    /// Consecutive failed checkpoints before the writer degrades to
    /// in-memory-only mode.
    pub max_failures: u32,
}

impl Default for WritePolicy {
    fn default() -> Self {
        WritePolicy {
            retries: 3,
            backoff: Duration::from_millis(10),
            max_failures: 3,
        }
    }
}

/// Atomically persists journal documents, retrying transient failures
/// and degrading gracefully when the disk stays unwritable.
#[derive(Debug)]
pub struct JournalWriter {
    path: PathBuf,
    policy: WritePolicy,
    consecutive_failures: u32,
    degraded: bool,
    last: Option<Json>,
    warnings: Vec<String>,
}

impl JournalWriter {
    /// A writer targeting `path` with the default [`WritePolicy`].
    pub fn new(path: impl Into<PathBuf>) -> Self {
        JournalWriter::with_policy(path, WritePolicy::default())
    }

    /// A writer with an explicit policy.
    pub fn with_policy(path: impl Into<PathBuf>, policy: WritePolicy) -> Self {
        JournalWriter {
            path: path.into(),
            policy,
            consecutive_failures: 0,
            degraded: false,
            last: Option::None,
            warnings: Vec::new(),
        }
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the writer has given up on the disk; the latest document
    /// is still retained in memory ([`JournalWriter::last`]).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Warnings accumulated across writes (failed attempts, the
    /// degradation notice) for the final report.
    pub fn warnings(&self) -> &[String] {
        &self.warnings
    }

    /// The most recent document handed to [`JournalWriter::write`].
    pub fn last(&self) -> Option<&Json> {
        self.last.as_ref()
    }

    /// Persists `doc`, returning whether it reached the disk. In
    /// degraded mode the document is only retained in memory.
    pub fn write(&mut self, doc: &Json) -> bool {
        self.last = Some(doc.clone());
        if self.degraded {
            return false;
        }
        let text = doc.to_string_pretty();
        let mut backoff = self.policy.backoff;
        let mut last_err = String::new();
        for attempt in 0..=self.policy.retries {
            match write_atomic(&self.path, &text) {
                Ok(()) => {
                    self.consecutive_failures = 0;
                    return true;
                }
                Err(e) => {
                    last_err = e;
                    if attempt < self.policy.retries && !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    backoff = backoff.saturating_mul(2);
                }
            }
        }
        self.consecutive_failures += 1;
        self.warnings.push(format!(
            "checkpoint write to {} failed after {} attempts: {last_err}",
            self.path.display(),
            self.policy.retries + 1,
        ));
        if self.consecutive_failures >= self.policy.max_failures {
            self.degraded = true;
            self.warnings.push(format!(
                "journal degraded to in-memory mode after {} consecutive write failures; \
                 the search continues but is no longer resumable from disk",
                self.consecutive_failures,
            ));
        }
        false
    }
}

/// Writes `text` to `path` atomically: serialize to a sibling temp file,
/// fsync it, rename over the target.
///
/// # Errors
///
/// Returns a description of the failing syscall.
pub fn write_atomic(path: &Path, text: &str) -> Result<(), String> {
    let tmp = sibling_tmp(path);
    let mut file = fs::File::create(&tmp).map_err(|e| format!("create {}: {e}", tmp.display()))?;
    file.write_all(text.as_bytes())
        .and_then(|()| file.sync_all())
        .map_err(|e| format!("write {}: {e}", tmp.display()))?;
    drop(file);
    fs::rename(&tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))
}

fn sibling_tmp(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("journal"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// Reads and parses a journal file.
///
/// # Errors
///
/// Returns a message for I/O failures and JSON syntax errors alike.
pub fn read_journal(path: &Path) -> Result<Json, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("parse {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chess_core::Decision;
    use chess_kernel::ThreadId;

    fn d(t: usize, c: u32) -> Decision {
        Decision {
            thread: ThreadId::new(t),
            choice: c,
        }
    }

    fn sample_stats() -> SearchStats {
        SearchStats {
            executions: 12,
            transitions: 345,
            terminating: 10,
            nonterminating: 1,
            abandoned: 1,
            deadlocks: 2,
            violations: 3,
            divergences: 1,
            fair_cycles: 1,
            unfair_cycles: 0,
            panics: 1,
            worker_restarts: 2,
            lost_to_restart: 5,
            first_error_execution: Some(4),
            max_depth: 77,
            wall: Duration::from_millis(1234),
        }
    }

    #[test]
    fn stats_round_trip() {
        let stats = sample_stats();
        let back =
            stats_from_json(&Json::parse(&stats_to_json(&stats).to_string_pretty()).unwrap())
                .unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn snapshot_round_trips_every_kind() {
        let frames = vec![
            FrameSnapshot {
                options: vec![d(0, 0), d(1, 0)],
                index: 1,
            },
            FrameSnapshot {
                options: vec![d(2, 1)],
                index: 0,
            },
        ];
        let snapshots = [
            StrategySnapshot::Dfs {
                stack: frames.clone(),
                horizon: Some(30),
                rng: [1, 2, 3, 4],
                prefer_continuation: true,
            },
            StrategySnapshot::Cb {
                bound: 2,
                budget: 1,
                stack: frames,
                horizon: None,
                rng: [5, 6, 7, 8],
                charge_fairness_switches: false,
            },
            StrategySnapshot::Random {
                seed: 42,
                rng: [9, 10, 11, 12],
            },
        ];
        for snap in snapshots {
            let text = snapshot_to_json(&snap).to_string_pretty();
            let back = snapshot_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, snap);
        }
    }

    #[test]
    fn checkpoint_round_trips_and_rejects_future_versions() {
        let ckpt = SearchCheckpoint {
            strategy: StrategySnapshot::Random {
                seed: 7,
                rng: [1, 1, 2, 3],
            },
            stats: sample_stats(),
        };
        let json = checkpoint_to_json(&ckpt);
        let back = checkpoint_from_json(&json).unwrap();
        assert_eq!(back.stats, ckpt.stats);
        assert_eq!(back.strategy, ckpt.strategy);

        let Json::Object(mut pairs) = json else {
            panic!("checkpoint is an object")
        };
        pairs[0].1 = Json::UInt(999);
        let err = checkpoint_from_json(&Json::Object(pairs)).unwrap_err();
        assert!(err.contains("version 999"), "{err}");
    }

    #[test]
    fn report_round_trips_every_outcome() {
        let cex = Counterexample {
            kind: CounterexampleKind::Safety,
            message: "lost update: counter == 1".into(),
            schedule: vec![d(0, 0), d(1, 0), d(0, 1)],
            execution: 9,
        };
        let outcomes = [
            SearchOutcome::Complete,
            SearchOutcome::SafetyViolation(cex.clone()),
            SearchOutcome::Deadlock(Counterexample {
                kind: CounterexampleKind::Deadlock,
                ..cex.clone()
            }),
            SearchOutcome::Panic(Counterexample {
                kind: CounterexampleKind::Panic,
                ..cex.clone()
            }),
            SearchOutcome::Divergence(Divergence {
                kind: DivergenceKind::FairCycle {
                    cycle_start: 3,
                    cycle_len: 5,
                },
                schedule: vec![d(1, 0)],
                execution: 2,
            }),
            SearchOutcome::Divergence(Divergence {
                kind: DivergenceKind::UnfairCycle {
                    cycle_start: 0,
                    cycle_len: 2,
                    starved: ThreadId::new(2),
                },
                schedule: vec![],
                execution: 4,
            }),
            SearchOutcome::Divergence(Divergence {
                kind: DivergenceKind::GoodSamaritanSuspect {
                    thread: ThreadId::new(1),
                    steps_without_yield: 150,
                },
                schedule: vec![d(1, 1)],
                execution: 1,
            }),
            SearchOutcome::Divergence(Divergence {
                kind: DivergenceKind::LivelockSuspect,
                schedule: vec![],
                execution: 7,
            }),
            SearchOutcome::BudgetExhausted(BudgetKind::Executions),
            SearchOutcome::BudgetExhausted(BudgetKind::Time),
            SearchOutcome::BudgetExhausted(BudgetKind::Cancelled),
            SearchOutcome::BudgetExhausted(BudgetKind::WorkerPanicked),
        ];
        for outcome in outcomes {
            let report = SearchReport {
                outcome,
                stats: sample_stats(),
            };
            let text = report_to_json(&report).to_string_pretty();
            let back = report_from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, report);
        }
    }

    #[test]
    fn report_codec_names_the_broken_field() {
        let err = report_from_json(&Json::parse("{}").unwrap()).unwrap_err();
        assert!(err.contains("no outcome"), "{err}");
        let err = report_from_json(
            &Json::parse(r#"{"outcome": {"kind": "weird"}, "stats": {}}"#).unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("unknown outcome kind"), "{err}");
        let err = report_from_json(
            &Json::parse(r#"{"outcome": {"kind": "budget_exhausted"}, "stats": {}}"#).unwrap(),
        )
        .unwrap_err();
        assert!(err.contains("unknown budget kind"), "{err}");
    }

    #[test]
    fn writer_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!("chess-journal-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.json");
        let mut w = JournalWriter::new(&path);
        let doc = Json::object([("hello", Json::UInt(1))]);
        assert!(w.write(&doc));
        assert!(!w.degraded());
        assert!(w.warnings().is_empty());
        assert_eq!(read_journal(&path).unwrap(), doc);
        // Overwrite: the reader only ever sees a complete document.
        let doc2 = Json::object([("hello", Json::UInt(2))]);
        assert!(w.write(&doc2));
        assert_eq!(read_journal(&path).unwrap(), doc2);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_degrades_after_repeated_failures() {
        // A path inside a directory that does not exist: every write
        // fails deterministically.
        let path = Path::new("/nonexistent-chess-dir/journal.json");
        let mut w = JournalWriter::with_policy(
            path,
            WritePolicy {
                retries: 1,
                backoff: Duration::ZERO,
                max_failures: 2,
            },
        );
        let doc = Json::object([("x", Json::UInt(1))]);
        assert!(!w.write(&doc));
        assert!(!w.degraded(), "one failure is not enough to degrade");
        assert!(!w.write(&doc));
        assert!(w.degraded(), "second consecutive failure degrades");
        // Degraded writes keep the latest document in memory only.
        let doc2 = Json::object([("x", Json::UInt(2))]);
        assert!(!w.write(&doc2));
        assert_eq!(w.last(), Some(&doc2));
        let warnings = w.warnings();
        assert!(
            warnings.iter().any(|w| w.contains("degraded")),
            "{warnings:?}"
        );
    }
}
