//! Rendering and persistence for experiment results: aligned text tables,
//! simple log-scale ASCII charts, and JSON files under `results/`.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(out, "{:>w$}  ", c, w = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Renders a log-scale ASCII bar chart (one bar per `(label, value)`),
/// used for Figure 2's exponential series and Figures 5–6's timings.
pub fn log_bars(points: &[(String, f64)], unit: &str) -> String {
    let mut out = String::new();
    let max = points.iter().map(|&(_, v)| v).fold(1.0f64, f64::max);
    let max_log = max.log10().max(1.0);
    for (label, v) in points {
        let bar = if *v > 0.0 {
            let frac = (v.max(1e-9).log10().max(0.0) / max_log).clamp(0.0, 1.0);
            "#".repeat(1 + (frac * 40.0) as usize)
        } else {
            String::new()
        };
        let _ = writeln!(out, "{label:>18}  {bar:<42} {v:.3} {unit}");
    }
    out
}

/// Directory experiment artifacts are written to.
pub fn results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    // Walk up to the workspace root (where Cargo.toml with [workspace] is).
    loop {
        if dir.join("Cargo.toml").exists()
            && fs::read_to_string(dir.join("Cargo.toml"))
                .map(|s| s.contains("[workspace]"))
                .unwrap_or(false)
        {
            return dir.join("results");
        }
        if !dir.pop() {
            return Path::new("results").to_path_buf();
        }
    }
}

/// Writes both a text rendering and a JSON value for an experiment.
pub fn persist(name: &str, text: &str, json: &crate::json::Json) {
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_err() {
        return;
    }
    let _ = fs::write(dir.join(format!("{name}.txt")), text);
    let _ = fs::write(dir.join(format!("{name}.json")), json.to_string_pretty());
    // The perf-trajectory tooling scans `BENCH_*.json` at the repo root,
    // not under results/ — mirror benchmark documents there so the
    // trajectory stays populated.
    if name.starts_with("BENCH_") {
        if let Some(root) = dir.parent() {
            let _ = fs::write(root.join(format!("{name}.json")), json.to_string_pretty());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(["a", "bbb"]);
        t.row(["1", "2"]);
        t.row(["333", "4"]);
        let r = t.render();
        assert!(r.contains("  a  bbb"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    fn row_padded_to_header() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.rows[0].len(), 3);
    }

    #[test]
    fn bars_scale_logarithmically() {
        let pts = vec![("ten".to_string(), 10.0), ("thousand".to_string(), 1000.0)];
        let s = log_bars(&pts, "execs");
        let ten_bar = s.lines().next().unwrap().matches('#').count();
        let k_bar = s.lines().nth(1).unwrap().matches('#').count();
        assert!(k_bar > ten_bar);
    }
}
