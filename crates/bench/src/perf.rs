//! The raw-speed perf harness: executions/sec and steps/sec on the
//! `scaling` workload matrix plus the kernel-heavy workloads, for a fixed
//! wall budget per cell.
//!
//! Unlike the paper-repro experiments (one-shot numbers in `results/`),
//! this harness produces a *trajectory*: `BENCH_scaling.json` is written
//! on every run, CI regenerates it nightly, and the PR-time smoke gate
//! compares a fresh run against the baseline checked into `results/` so a
//! per-transition slowdown in the execution core is visible immediately.
//!
//! Every workload runs twice in the same process:
//!
//! * **fast** — the production path: pooled kernel allocations
//!   ([`chess_core::Config::with_pooling`]) and incrementally-maintained
//!   capture fingerprints ([`chess_kernel::Kernel::set_fingerprint_caching`]);
//! * **reference** — the from-scratch path kept for the equivalence tests
//!   (`tests/tests/perf_equivalence.rs`): factory-fresh kernels, full
//!   recapture per fingerprint.
//!
//! The same-run pair gives a machine-independent before/after comparison
//! (`speedup` per row); the absolute fast-path numbers feed the baseline
//! gate ([`check_against_baseline`]).

use std::time::Duration;

use chess_core::strategy::RandomWalk;
use chess_core::{Config, Explorer};
use chess_kernel::{Capture, Kernel, MemoryModel};
use chess_workloads::litmus::dekker_fenced;
use chess_workloads::miniboot::{miniboot, BootConfig};
use chess_workloads::philosophers::{philosophers, PhilosophersConfig};
use chess_workloads::wsq::{wsq, WsqConfig};

use crate::impl_to_json;
use crate::json::{Json, ToJson};

/// Which execution-core path a measurement exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerfMode {
    /// Pooled kernel state + incremental capture fingerprints.
    Fast,
    /// From-scratch per execution: the slow path the equivalence harness
    /// compares against.
    Reference,
}

impl PerfMode {
    /// Stable label used in the JSON rows.
    pub fn as_str(self) -> &'static str {
        match self {
            PerfMode::Fast => "fast",
            PerfMode::Reference => "reference",
        }
    }
}

/// One measured cell: a workload under one mode.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Workload label (stable across PRs; the baseline gate keys on it).
    pub workload: String,
    /// `"fast"` or `"reference"`.
    pub mode: String,
    /// Executions completed within the budget.
    pub executions: u64,
    /// Transitions executed within the budget.
    pub transitions: u64,
    /// Wall-clock seconds actually spent.
    pub secs: f64,
    /// Executions per second.
    pub execs_per_sec: f64,
    /// Transitions per second.
    pub steps_per_sec: f64,
}

impl_to_json!(PerfRow {
    workload,
    mode,
    executions,
    transitions,
    secs,
    execs_per_sec,
    steps_per_sec
});

/// A full harness run: every workload × mode, plus process peak RSS.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Wall budget per cell, in milliseconds.
    pub budget_ms: u64,
    /// Peak resident set size of the process in kilobytes (`VmHWM`;
    /// 0 where `/proc/self/status` is unavailable).
    pub peak_rss_kb: u64,
    /// Measured cells.
    pub rows: Vec<PerfRow>,
}

impl PerfReport {
    /// Serializes the report (schema round-tripped by
    /// [`PerfReport::from_json`]).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("budget_ms", Json::UInt(self.budget_ms)),
            ("peak_rss_kb", Json::UInt(self.peak_rss_kb)),
            ("rows", Json::array(self.rows.iter().map(|r| r.to_json()))),
        ])
    }

    /// Parses a report previously written by [`PerfReport::to_json`].
    pub fn from_json(json: &Json) -> Result<PerfReport, String> {
        let budget_ms = json
            .get("budget_ms")
            .and_then(Json::as_u64)
            .ok_or("bench report: missing budget_ms")?;
        let peak_rss_kb = json
            .get("peak_rss_kb")
            .and_then(Json::as_u64)
            .ok_or("bench report: missing peak_rss_kb")?;
        let rows = json
            .get("rows")
            .and_then(Json::as_array)
            .ok_or("bench report: missing rows")?
            .iter()
            .map(|row| {
                let str_field = |k: &str| -> Result<String, String> {
                    row.get(k)
                        .and_then(Json::as_str)
                        .map(str::to_string)
                        .ok_or(format!("bench row: missing {k}"))
                };
                let num_field = |k: &str| -> Result<f64, String> {
                    match row.get(k) {
                        Some(Json::UInt(n)) => Ok(*n as f64),
                        Some(Json::Int(n)) => Ok(*n as f64),
                        Some(Json::Float(f)) => Ok(*f),
                        _ => Err(format!("bench row: missing {k}")),
                    }
                };
                let u64_field = |k: &str| -> Result<u64, String> {
                    row.get(k)
                        .and_then(Json::as_u64)
                        .ok_or(format!("bench row: missing {k}"))
                };
                Ok(PerfRow {
                    workload: str_field("workload")?,
                    mode: str_field("mode")?,
                    executions: u64_field("executions")?,
                    transitions: u64_field("transitions")?,
                    secs: num_field("secs")?,
                    execs_per_sec: num_field("execs_per_sec")?,
                    steps_per_sec: num_field("steps_per_sec")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(PerfReport {
            budget_ms,
            peak_rss_kb,
            rows,
        })
    }

    /// Renders an aligned text table of the rows, with a per-workload
    /// fast/reference speedup column.
    pub fn render(&self) -> String {
        let mut table = crate::output::TextTable::new([
            "workload", "mode", "execs", "steps", "secs", "execs/s", "steps/s", "speedup",
        ]);
        for r in &self.rows {
            let speedup = if r.mode == PerfMode::Fast.as_str() {
                self.speedup(&r.workload)
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_default()
            } else {
                String::new()
            };
            table.row([
                r.workload.clone(),
                r.mode.clone(),
                r.executions.to_string(),
                r.transitions.to_string(),
                format!("{:.2}", r.secs),
                format!("{:.0}", r.execs_per_sec),
                format!("{:.0}", r.steps_per_sec),
                speedup,
            ]);
        }
        format!(
            "{}\npeak RSS: {} kB (budget {} ms/cell)\n",
            table.render(),
            self.peak_rss_kb,
            self.budget_ms
        )
    }

    /// The row for `workload` under `mode`, if measured.
    pub fn row(&self, workload: &str, mode: PerfMode) -> Option<&PerfRow> {
        self.rows
            .iter()
            .find(|r| r.workload == workload && r.mode == mode.as_str())
    }

    /// Fast-path executions/sec divided by reference-path executions/sec
    /// for one workload (the same-run before/after comparison).
    pub fn speedup(&self, workload: &str) -> Option<f64> {
        let fast = self.row(workload, PerfMode::Fast)?.execs_per_sec;
        let reference = self.row(workload, PerfMode::Reference)?.execs_per_sec;
        (reference > 0.0).then(|| fast / reference)
    }
}

/// The bench workload matrix: the `scaling` subjects plus the
/// kernel-heavy workloads named by the roadmap (miniboot, wsq,
/// fenced Dekker under TSO).
pub fn workload_names() -> Vec<&'static str> {
    vec![
        "philosophers(3)",
        "wsq(2 stealers)",
        "miniboot",
        "dekker-fenced(tso)",
    ]
}

fn run_cell<S, F>(name: &str, factory: F, mode: PerfMode, budget: Duration) -> PerfRow
where
    S: Capture + Clone + 'static,
    F: Fn() -> Kernel<S>,
{
    // Fair config with cycle detection: the per-step fingerprint path is
    // exactly what the incremental-capture optimization targets, so the
    // bench must exercise it. The random walk revisits interleavings
    // freely — throughput, not coverage, is the metric here.
    let config = Config::fair()
        .with_time_budget(budget)
        .with_pooling(mode == PerfMode::Fast);
    let caching = mode == PerfMode::Fast;
    let mut explorer = Explorer::new(
        move || {
            let mut k = factory();
            k.set_fingerprint_caching(caching);
            k
        },
        RandomWalk::new(42),
        config,
    );
    let report = explorer.run();
    let secs = report.stats.wall.as_secs_f64().max(1e-9);
    PerfRow {
        workload: name.to_string(),
        mode: mode.as_str().to_string(),
        executions: report.stats.executions,
        transitions: report.stats.transitions,
        secs,
        execs_per_sec: report.stats.executions as f64 / secs,
        steps_per_sec: report.stats.transitions as f64 / secs,
    }
}

/// Runs the full matrix: every workload under both modes, reference
/// first (so the fast rows of a same-run comparison cannot benefit from
/// warmup the reference rows did not get).
pub fn perf_matrix(budget: Duration) -> PerfReport {
    let mut rows = Vec::new();
    for mode in [PerfMode::Reference, PerfMode::Fast] {
        rows.push(run_cell(
            "philosophers(3)",
            || philosophers(PhilosophersConfig::table2(3)),
            mode,
            budget,
        ));
        rows.push(run_cell(
            "wsq(2 stealers)",
            || wsq(WsqConfig::table2(2)),
            mode,
            budget,
        ));
        rows.push(run_cell(
            "miniboot",
            || miniboot(BootConfig::small()),
            mode,
            budget,
        ));
        rows.push(run_cell(
            "dekker-fenced(tso)",
            || dekker_fenced(MemoryModel::Tso),
            mode,
            budget,
        ));
    }
    rows.push(reduced_search_row(budget));
    PerfReport {
        budget_ms: budget.as_millis() as u64,
        peak_rss_kb: peak_rss_kb(),
        rows,
    }
}

/// The reduction-mode cell: sleep-set DFS on the fast path (mode
/// `"reduced"`), on the philosophers subject. Unlike the random-walk
/// rows this exercises the reduction hot path — per-option footprint
/// collection, exploration-order permutation, and sleep-frame
/// derivation — which the strategy-side frame pooling targets. The row
/// is informational: [`check_against_baseline`] gates on `"fast"` rows
/// only, so a systematic search exhausting its space early cannot fail
/// CI on throughput.
pub fn reduced_search_row(budget: Duration) -> PerfRow {
    use chess_core::strategy::Dfs;

    let config = Config::fair().with_time_budget(budget).with_pooling(true);
    let mut explorer = Explorer::new(
        || {
            let mut k = philosophers(PhilosophersConfig::table2(3));
            k.set_fingerprint_caching(true);
            k
        },
        Dfs::with_sleep_sets(),
        config,
    );
    let report = explorer.run();
    let secs = report.stats.wall.as_secs_f64().max(1e-9);
    PerfRow {
        workload: "philosophers(3)".to_string(),
        mode: "reduced".to_string(),
        executions: report.stats.executions,
        transitions: report.stats.transitions,
        secs,
        execs_per_sec: report.stats.executions as f64 / secs,
        steps_per_sec: report.stats.transitions as f64 / secs,
    }
}

/// The campaign-runner overhead cell: the philosophers subject again,
/// but driven through a [`chess_core::procpool::Supervisor`] as a pool
/// of re-execed worker processes (mode `"serve"`), the way `fair-chess
/// serve` runs a campaign. Comparing its executions/sec against the
/// same-run `"fast"` row prices the process isolation: protocol
/// framing, heartbeats, and spawn overhead, amortized over `2 ×
/// workers` jobs.
///
/// The row is informational: [`check_against_baseline`] gates on
/// `"fast"` rows only, so machine-dependent spawn costs cannot fail CI.
///
/// `program`/`worker_args` name the worker command — normally the
/// calling binary with a flag routing into [`serve_worker_main`].
pub fn serve_overhead_row(
    budget: Duration,
    workers: usize,
    program: std::path::PathBuf,
    worker_args: Vec<String>,
) -> PerfRow {
    use chess_core::procpool::{JobOutcome, JobSpec, PoolConfig, ProcessWorkerFactory, Supervisor};

    let workers = workers.max(1);
    let jobs = workers * 2;
    // Each worker runs two jobs back to back, so the campaign's wall
    // time tracks the overall budget.
    let per_job = budget * workers as u32 / jobs as u32;
    let specs = (0..jobs)
        .map(|i| JobSpec {
            id: format!("cell-{i}"),
            payload: per_job.as_millis().to_string(),
        })
        .collect();
    let config = PoolConfig {
        workers,
        // Generous watchdog: this cell measures throughput, not
        // liveness, and a busy machine must not kill a slow worker.
        heartbeat_timeout: Duration::from_secs(10).max(per_job * 4),
        ..PoolConfig::default()
    };
    let start = std::time::Instant::now();
    let factory = ProcessWorkerFactory::new(program, worker_args);
    let report = Supervisor::new(factory, config).run(specs, |_| {});
    let secs = start.elapsed().as_secs_f64().max(1e-9);

    let (mut executions, mut transitions) = (0u64, 0u64);
    for verdict in &report.verdicts {
        if let JobOutcome::Done { payload } = &verdict.outcome {
            let mut counts = payload.split_whitespace();
            let mut next = || {
                counts
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .unwrap_or(0)
            };
            executions += next();
            transitions += next();
        }
    }
    PerfRow {
        workload: "philosophers(3)".to_string(),
        mode: "serve".to_string(),
        executions,
        transitions,
        secs,
        execs_per_sec: executions as f64 / secs,
        steps_per_sec: transitions as f64 / secs,
    }
}

/// The worker half of [`serve_overhead_row`]: speaks the procpool line
/// protocol on stdin/stdout. Each job payload is a wall budget in
/// milliseconds for one fast-mode philosophers cell; the result payload
/// is `"<executions> <transitions>"`.
pub fn serve_worker_main() {
    use std::sync::Arc;

    chess_core::procpool::worker_main(
        std::io::stdin().lock(),
        std::io::stdout(),
        Duration::from_millis(100),
        |_id, _attempt, payload, progress| {
            let ms: u64 = payload
                .trim()
                .parse()
                .map_err(|_| format!("bad cell budget {payload:?}"))?;
            let config = Config::fair()
                .with_time_budget(Duration::from_millis(ms))
                .with_pooling(true);
            let report = Explorer::new(
                || {
                    let mut k = philosophers(PhilosophersConfig::table2(3));
                    k.set_fingerprint_caching(true);
                    k
                },
                RandomWalk::new(42),
                config,
            )
            .with_progress(Arc::clone(progress))
            .run();
            Ok(format!(
                "{} {}",
                report.stats.executions, report.stats.transitions
            ))
        },
    );
}

/// Peak resident set size of the current process in kilobytes, from
/// `/proc/self/status` (`VmHWM`); 0 where unavailable.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// The PR-time regression gate: every fast-mode workload in `current`
/// must reach at least `(1 - tolerance)` of the baseline's fast-mode
/// executions/sec. Returns the per-workload comparison lines, or the
/// offending rows as an error.
pub fn check_against_baseline(
    current: &PerfReport,
    baseline: &PerfReport,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let mut lines = Vec::new();
    let mut failures = Vec::new();
    for base in baseline
        .rows
        .iter()
        .filter(|r| r.mode == PerfMode::Fast.as_str())
    {
        let Some(cur) = current.row(&base.workload, PerfMode::Fast) else {
            failures.push(format!("{}: missing from current run", base.workload));
            continue;
        };
        let floor = base.execs_per_sec * (1.0 - tolerance);
        let line = format!(
            "{}: {:.0} execs/s vs baseline {:.0} (floor {:.0})",
            base.workload, cur.execs_per_sec, base.execs_per_sec, floor
        );
        if cur.execs_per_sec < floor {
            failures.push(line);
        } else {
            lines.push(line);
        }
    }
    if failures.is_empty() {
        Ok(lines)
    } else {
        Err(format!(
            "executions/sec regressed more than {:.0}% vs results/ baseline:\n  {}",
            tolerance * 100.0,
            failures.join("\n  ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PerfReport {
        PerfReport {
            budget_ms: 100,
            peak_rss_kb: 4321,
            rows: vec![
                PerfRow {
                    workload: "w".into(),
                    mode: "reference".into(),
                    executions: 10,
                    transitions: 100,
                    secs: 1.0,
                    execs_per_sec: 10.0,
                    steps_per_sec: 100.0,
                },
                PerfRow {
                    workload: "w".into(),
                    mode: "fast".into(),
                    executions: 30,
                    transitions: 300,
                    secs: 1.0,
                    execs_per_sec: 30.0,
                    steps_per_sec: 300.0,
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_through_json_text() {
        let report = sample();
        let text = report.to_json().to_string_pretty();
        let parsed = PerfReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.budget_ms, report.budget_ms);
        assert_eq!(parsed.peak_rss_kb, report.peak_rss_kb);
        assert_eq!(parsed.rows.len(), report.rows.len());
        for (a, b) in parsed.rows.iter().zip(&report.rows) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.mode, b.mode);
            assert_eq!(a.executions, b.executions);
            assert_eq!(a.transitions, b.transitions);
            assert_eq!(a.execs_per_sec, b.execs_per_sec);
        }
    }

    #[test]
    fn speedup_compares_modes() {
        let report = sample();
        assert_eq!(report.speedup("w"), Some(3.0));
        assert_eq!(report.speedup("missing"), None);
        let rendered = report.render();
        assert!(rendered.contains("3.00x"), "{rendered}");
        assert!(rendered.contains("peak RSS: 4321 kB"), "{rendered}");
    }

    #[test]
    fn baseline_gate_accepts_within_tolerance_and_rejects_regressions() {
        let baseline = sample();
        let mut current = sample();
        current.rows[1].execs_per_sec = 25.0; // -17%: within 30%
        assert!(check_against_baseline(&current, &baseline, 0.30).is_ok());
        current.rows[1].execs_per_sec = 10.0; // -67%: regression
        let err = check_against_baseline(&current, &baseline, 0.30).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        assert!(err.contains('w'), "{err}");
        // A workload missing from the current run fails loudly.
        current.rows.remove(1);
        assert!(check_against_baseline(&current, &baseline, 0.30).is_err());
    }

    #[test]
    fn tiny_budget_matrix_produces_all_cells() {
        let report = perf_matrix(Duration::from_millis(30));
        for w in workload_names() {
            assert!(report.row(w, PerfMode::Fast).is_some(), "missing fast {w}");
            assert!(
                report.row(w, PerfMode::Reference).is_some(),
                "missing reference {w}"
            );
        }
        assert!(
            report.rows.iter().any(|r| r.mode == "reduced"),
            "missing the reduced-search cell"
        );
        // Re-parse what the bench binary would write.
        let text = report.to_json().to_string_pretty();
        let parsed = PerfReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.rows.len(), report.rows.len());
    }
}
