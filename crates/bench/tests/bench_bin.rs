//! Smoke tests for the `bench` binary: a tiny-budget run must produce a
//! complete, parseable `BENCH_scaling.json`, and the `--check` gate must
//! pass against the report it just produced and fail against an
//! impossible baseline.
//!
//! The binary is run from a temp directory so its `results/` output
//! lands there, never on the baseline checked into the repo.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use chess_bench::{Json, PerfMode, PerfReport};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench-smoke-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_bench(cwd: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bench"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("failed to run bench")
}

#[test]
fn tiny_budget_run_writes_complete_report() {
    let dir = temp_dir("report");
    let out = run_bench(&dir, &["--budget-ms", "20"]);
    assert!(out.status.success(), "{out:?}");

    let json_path = dir.join("results/BENCH_scaling.json");
    let text = std::fs::read_to_string(&json_path)
        .unwrap_or_else(|e| panic!("missing {}: {e}", json_path.display()));
    let report = PerfReport::from_json(&Json::parse(&text).expect("invalid JSON"))
        .expect("report schema drifted");

    assert_eq!(report.budget_ms, 20);
    for workload in chess_bench::workload_names() {
        for mode in [PerfMode::Fast, PerfMode::Reference] {
            let row = report
                .row(workload, mode)
                .unwrap_or_else(|| panic!("missing row {workload}/{}", mode.as_str()));
            assert!(
                row.executions > 0,
                "{workload}/{}: no executions in the budget",
                mode.as_str()
            );
        }
    }
    assert!(dir.join("results/BENCH_scaling.txt").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_gate_passes_own_report_and_fails_impossible_baseline() {
    let dir = temp_dir("check");
    // First run produces the baseline.
    let out = run_bench(&dir, &["--budget-ms", "20"]);
    assert!(out.status.success(), "{out:?}");
    let baseline = dir.join("results/BENCH_scaling.json");
    let baseline_s = baseline.to_str().unwrap();

    // A same-machine re-run with a generous tolerance must pass.
    let out = run_bench(
        &dir,
        &[
            "--budget-ms",
            "20",
            "--check",
            baseline_s,
            "--tolerance",
            "0.95",
        ],
    );
    assert!(
        out.status.success(),
        "check against own report failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("baseline check passed"));

    // Inflate the baseline beyond reach: the gate must fail.
    let text = std::fs::read_to_string(&baseline).unwrap();
    let mut report = PerfReport::from_json(&Json::parse(&text).unwrap()).unwrap();
    for row in &mut report.rows {
        row.execs_per_sec *= 1e6;
    }
    let impossible = dir.join("impossible.json");
    std::fs::write(&impossible, report.to_json().to_string_pretty()).unwrap();
    let out = run_bench(
        &dir,
        &["--budget-ms", "20", "--check", impossible.to_str().unwrap()],
    );
    assert!(!out.status.success(), "gate passed an impossible baseline");
    assert!(String::from_utf8_lossy(&out.stderr).contains("regressed"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_fails_loudly_on_unreadable_baseline() {
    let dir = temp_dir("missing");
    let out = run_bench(&dir, &["--budget-ms", "20", "--check", "no-such-file.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read baseline"));
    let _ = std::fs::remove_dir_all(&dir);
}
