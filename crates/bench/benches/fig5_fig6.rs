//! Figures 5/6 at bench scale: head-to-head search time, fair vs. the
//! unfair depth-bounded baseline, on the 3-philosopher subject at cb=1.
//! The fair search completes; the unfair baseline is capped at the same
//! number of executions the fair search needed — and still covers fewer
//! states (see the `fig5_fig6` binary for the full log-scale series).

use chess_core::strategy::ContextBounded;
use chess_core::{Config, Explorer};
use chess_workloads::philosophers::{philosophers, PhilosophersConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fair_vs_unfair(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_phil3_cb1");
    group.sample_size(10);
    let factory = || philosophers(PhilosophersConfig::table2(3));

    // Calibrate: how many executions does the complete fair search take?
    let fair_execs = {
        let config = Config::fair().with_detect_cycles(false);
        Explorer::new(factory, ContextBounded::new(1), config)
            .run()
            .stats
            .executions
    };

    group.bench_function("fair_complete", |b| {
        b.iter(|| {
            let config = Config::fair().with_detect_cycles(false);
            let report = Explorer::new(factory, ContextBounded::new(1), config).run();
            black_box(report.stats.executions)
        })
    });
    group.bench_function("unfair_db30_same_executions", |b| {
        b.iter(|| {
            let config = Config::unfair()
                .with_depth_bound(1_200)
                .with_max_executions(fair_execs);
            let report = Explorer::new(factory, ContextBounded::with_horizon(1, 30), config).run();
            black_box(report.stats.executions)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fair_vs_unfair);
criterion_main!(benches);
