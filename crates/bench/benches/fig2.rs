//! Figure 2 at bench scale: unfair depth-bounded DFS on the Figure 1
//! program. The measured time (and the reported nonterminating-execution
//! throughput) grows exponentially with the depth bound — run the `fig2`
//! binary for the full sweep.

use chess_core::strategy::Dfs;
use chess_core::{Config, Explorer};
use chess_workloads::philosophers::figure1;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_unfair_depth_bounded_dfs");
    group.sample_size(10);
    for &db in &[12usize, 16, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(db), &db, |b, &db| {
            b.iter(|| {
                let config = Config::unfair().with_depth_bound(db);
                let report = Explorer::new(figure1, Dfs::new(), config).run();
                black_box(report.stats.nonterminating)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
