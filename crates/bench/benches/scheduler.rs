//! Microbenchmarks of the fair scheduler's bookkeeping (Algorithm 1) and
//! the kernel's transition machinery — the per-step overhead fairness
//! adds to a stateless search.

use chess_core::{FairScheduler, TransitionSystem};
use chess_kernel::{ThreadId, TidSet};
use chess_workloads::spinloop::figure3;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fair_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("fair_scheduler_step");
    for &n in &[2usize, 8, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let es = TidSet::full(n);
            b.iter_batched(
                || FairScheduler::new(n),
                |mut fair| {
                    // One window's worth of work for each thread.
                    for i in 0..n {
                        let t = ThreadId::new(i);
                        let schedulable = fair.schedulable(black_box(&es));
                        black_box(&schedulable);
                        fair.on_scheduled(t, &es, &es, i % 3 == 0);
                    }
                    fair
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn bench_tidset(c: &mut Criterion) {
    let mut group = c.benchmark_group("tidset");
    let a = TidSet::full(128);
    let b_set: TidSet = (0..128).step_by(3).map(ThreadId::new).collect();
    group.bench_function("union_128", |b| {
        b.iter(|| black_box(&a).union(black_box(&b_set)))
    });
    group.bench_function("difference_128", |b| {
        b.iter(|| black_box(&a).difference(black_box(&b_set)))
    });
    group.bench_function("iter_128", |b| {
        b.iter(|| black_box(&a).iter().map(|t| t.index()).sum::<usize>())
    });
    group.finish();
}

fn bench_kernel_execution(c: &mut Criterion) {
    c.bench_function("kernel_execution_figure3_round_robin", |b| {
        b.iter(|| {
            let mut k = figure3();
            let mut rr = 0usize;
            while TransitionSystem::status(&k).is_running() {
                let n = k.thread_count();
                let t = (0..n)
                    .map(|i| ThreadId::new((rr + i) % n))
                    .find(|&t| k.enabled(t))
                    .unwrap();
                k.step(t, 0);
                rr = (t.index() + 1) % n;
            }
            black_box(k.stats().steps)
        })
    });
}

fn bench_fingerprint(c: &mut Criterion) {
    let k = figure3();
    c.bench_function("state_fingerprint_figure3", |b| {
        b.iter(|| black_box(&k).fingerprint())
    });
}

criterion_group!(
    benches,
    bench_fair_scheduler,
    bench_tidset,
    bench_kernel_execution,
    bench_fingerprint
);
criterion_main!(benches);
