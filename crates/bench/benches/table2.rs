//! Table 2 at bench scale: complete fair context-bounded coverage runs on
//! the two coverage subjects — the searches whose state counts Table 2
//! reports. Run the `table2` binary for the full grid.

use chess_core::strategy::ContextBounded;
use chess_core::{Config, Explorer};
use chess_state::CoverageTracker;
use chess_workloads::philosophers::{philosophers, PhilosophersConfig};
use chess_workloads::wsq::{wsq, WsqConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fair_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_fair_coverage");
    group.sample_size(10);
    group.bench_function("phil3_cb2", |b| {
        b.iter(|| {
            let factory = || philosophers(PhilosophersConfig::table2(3));
            let mut cov = CoverageTracker::new();
            let config = Config::fair().with_detect_cycles(false);
            Explorer::new(factory, ContextBounded::new(2), config).run_observed(&mut cov);
            black_box(cov.distinct_states())
        })
    });
    group.bench_function("wsq1_cb1", |b| {
        b.iter(|| {
            let factory = || wsq(WsqConfig::table2(1));
            let mut cov = CoverageTracker::new();
            let config = Config::fair().with_detect_cycles(false);
            Explorer::new(factory, ContextBounded::new(1), config).run_observed(&mut cov);
            black_box(cov.distinct_states())
        })
    });
    group.finish();
}

fn bench_stateful_reference(c: &mut Criterion) {
    use chess_state::{StateGraph, StatefulLimits};
    let mut group = c.benchmark_group("table2_stateful_reference");
    group.sample_size(10);
    group.bench_function("phil3_total_states", |b| {
        b.iter(|| {
            let g = StateGraph::build(
                &philosophers(PhilosophersConfig::table2(3)),
                StatefulLimits::default(),
            )
            .unwrap();
            black_box(g.state_count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fair_coverage, bench_stateful_reference);
criterion_main!(benches);
