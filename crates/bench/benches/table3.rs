//! Table 3 at bench scale: time-to-first-bug for the seeded bugs with
//! the fair context-bounded search. Run the `table3` binary for the full
//! fair-vs-unfair comparison.

use chess_core::strategy::ContextBounded;
use chess_core::{Config, Explorer};
use chess_workloads::channels::{fifo_pipeline, ChannelBug, FifoConfig};
use chess_workloads::wsq::{wsq, WsqBug, WsqConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_bug_hunts(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_fair_bug_hunt");
    group.sample_size(10);
    group.bench_function("wsq_bug2_unsynchronized_steal", |b| {
        b.iter(|| {
            let factory = || wsq(WsqConfig::with_bug(WsqBug::UnsynchronizedSteal));
            let config = Config::fair().with_detect_cycles(false);
            let report = Explorer::new(factory, ContextBounded::new(2), config).run();
            assert!(report.outcome.found_error());
            black_box(report.stats.executions)
        })
    });
    group.bench_function("channel_bug1_credit_leak", |b| {
        b.iter(|| {
            let factory = || fifo_pipeline(FifoConfig::with_bug(ChannelBug::CreditLeak));
            let config = Config::fair().with_detect_cycles(false);
            let report = Explorer::new(factory, ContextBounded::new(2), config).run();
            assert!(report.outcome.found_error());
            black_box(report.stats.executions)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bug_hunts);
criterion_main!(benches);
