//! The daemon's wire protocol: line-delimited JSON over a unix or TCP
//! socket.
//!
//! Every request is one JSON object on one line carrying a protocol
//! version `v` and an operation `op`; every response is one object with
//! `"ok": true` plus operation fields, or `"ok": false` plus a
//! human-readable `error`. Malformed input — unparsable JSON, a missing
//! or future `v`, an unknown `op` — always gets a *structured error
//! response*, never a dropped connection or a crash: a garbage-emitting
//! client is an expected fault, exactly like a garbage-emitting worker
//! in the process pool underneath.
//!
//! `watch` is the one streaming operation: after the initial `ok` the
//! connection carries `{"event": ...}` objects (one per line) until a
//! final `{"event": "done"}`.
//!
//! # Grammar
//!
//! ```text
//! request  = submit | status | watch | cancel | results | shutdown
//! submit   = {"v": 1, "op": "submit", "manifest": {...}}
//! status   = {"v": 1, "op": "status", "campaign": hexid?}
//! watch    = {"v": 1, "op": "watch", "campaign": hexid}
//! cancel   = {"v": 1, "op": "cancel", "campaign": hexid}
//! results  = {"v": 1, "op": "results", "campaign": hexid}
//! shutdown = {"v": 1, "op": "shutdown"}
//! hexid    = 16 lowercase hex digits (the manifest digest)
//! ```
//!
//! # Compatibility
//!
//! `v` is required and must equal [`PROTOCOL_VERSION`] exactly; a
//! daemon answers any other version with a structured error naming
//! both versions, so a mismatched client fails loudly on its first
//! request instead of mis-parsing later ones. Additive response fields
//! are not a version bump — clients must ignore fields they do not
//! know.

use chess_bench::Json;

use crate::store::{digest_hex, parse_digest};

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a campaign manifest (the document under `"manifest"`).
    Submit {
        /// The manifest document.
        manifest: Json,
    },
    /// Progress counters for one campaign, or for all when `None`.
    Status {
        /// The campaign digest, if narrowing to one.
        campaign: Option<u64>,
    },
    /// Stream verdicts and progress until the campaign finishes.
    Watch {
        /// The campaign digest.
        campaign: u64,
    },
    /// Stop an in-flight campaign and mark it cancelled in the store.
    Cancel {
        /// The campaign digest.
        campaign: u64,
    },
    /// The final report of a finished campaign.
    Results {
        /// The campaign digest.
        campaign: u64,
    },
    /// Stop accepting work and exit once the current campaign parks.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns the message to ship in the structured error response; the
/// connection stays usable.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let json = Json::parse(line).map_err(|e| format!("request is not JSON: {e}"))?;
    match json.get("v").and_then(Json::as_u64) {
        Some(PROTOCOL_VERSION) => {}
        Some(v) => {
            return Err(format!(
                "protocol version {v} is not supported; this daemon speaks {PROTOCOL_VERSION}"
            ))
        }
        None => return Err(format!("request has no \"v\" (speak {PROTOCOL_VERSION})")),
    }
    let campaign = |required: bool| -> Result<Option<u64>, String> {
        match json.get("campaign") {
            Some(c) => {
                let text = c.as_str().ok_or("\"campaign\" must be a string")?;
                Ok(Some(parse_digest(text)?))
            }
            None if required => Err("request has no \"campaign\"".to_string()),
            None => Ok(None),
        }
    };
    match json.get("op").and_then(Json::as_str) {
        Some("submit") => Ok(Request::Submit {
            manifest: json
                .get("manifest")
                .cloned()
                .ok_or("submit has no \"manifest\"")?,
        }),
        Some("status") => Ok(Request::Status {
            campaign: campaign(false)?,
        }),
        Some("watch") => Ok(Request::Watch {
            campaign: campaign(true)?.expect("required"),
        }),
        Some("cancel") => Ok(Request::Cancel {
            campaign: campaign(true)?.expect("required"),
        }),
        Some("results") => Ok(Request::Results {
            campaign: campaign(true)?.expect("required"),
        }),
        Some("shutdown") => Ok(Request::Shutdown),
        Some(op) => Err(format!(
            "unknown op {op:?} (expected submit, status, watch, cancel, results, or shutdown)"
        )),
        None => Err("request has no \"op\"".to_string()),
    }
}

/// Serializes a request for the client side (the inverse of
/// [`parse_request`]).
pub fn request_to_json(request: &Request) -> Json {
    let mut fields = vec![("v".to_string(), Json::UInt(PROTOCOL_VERSION))];
    let mut push = |k: &str, v: Json| fields.push((k.to_string(), v));
    match request {
        Request::Submit { manifest } => {
            push("op", Json::Str("submit".into()));
            push("manifest", manifest.clone());
        }
        Request::Status { campaign } => {
            push("op", Json::Str("status".into()));
            if let Some(c) = campaign {
                push("campaign", Json::Str(digest_hex(*c)));
            }
        }
        Request::Watch { campaign } => {
            push("op", Json::Str("watch".into()));
            push("campaign", Json::Str(digest_hex(*campaign)));
        }
        Request::Cancel { campaign } => {
            push("op", Json::Str("cancel".into()));
            push("campaign", Json::Str(digest_hex(*campaign)));
        }
        Request::Results { campaign } => {
            push("op", Json::Str("results".into()));
            push("campaign", Json::Str(digest_hex(*campaign)));
        }
        Request::Shutdown => push("op", Json::Str("shutdown".into())),
    }
    Json::Object(fields)
}

/// An `"ok": true` response with extra fields.
pub fn ok_response<K: Into<String>>(fields: impl IntoIterator<Item = (K, Json)>) -> Json {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(fields.into_iter().map(|(k, v)| (k.into(), v)));
    Json::Object(all)
}

/// An `"ok": false` response carrying the error message.
pub fn error_response(message: &str) -> Json {
    Json::object([
        ("ok", Json::Bool(false)),
        ("error", Json::Str(message.to_string())),
    ])
}

/// A watch-stream event with extra fields.
pub fn event<K: Into<String>>(kind: &str, fields: impl IntoIterator<Item = (K, Json)>) -> Json {
    let mut all = vec![("event".to_string(), Json::Str(kind.to_string()))];
    all.extend(fields.into_iter().map(|(k, v)| (k.into(), v)));
    Json::Object(all)
}

/// Serializes a protocol object onto one line (requests, responses,
/// and events are all newline-delimited; documents never contain a
/// literal newline because the serializer escapes them).
pub fn to_line(json: &Json) -> String {
    let mut line = json.to_string_pretty().replace('\n', " ");
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::Submit {
                manifest: Json::parse(r#"{"jobs": []}"#).unwrap(),
            },
            Request::Status { campaign: None },
            Request::Status {
                campaign: Some(0xabc),
            },
            Request::Watch { campaign: 7 },
            Request::Cancel { campaign: 7 },
            Request::Results { campaign: u64::MAX },
            Request::Shutdown,
        ];
        for request in requests {
            let line = to_line(&request_to_json(&request));
            assert!(!line.trim_end().contains('\n'), "one line per request");
            assert_eq!(parse_request(line.trim_end()).unwrap(), request);
        }
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        let check = |line: &str, needle: &str| {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        };
        check("!!garbage!!", "not JSON");
        check(r#"{"op": "status"}"#, "\"v\"");
        check(r#"{"v": 99, "op": "status"}"#, "version 99");
        check(r#"{"v": 1}"#, "\"op\"");
        check(r#"{"v": 1, "op": "explode"}"#, "unknown op");
        check(r#"{"v": 1, "op": "watch"}"#, "\"campaign\"");
        check(r#"{"v": 1, "op": "watch", "campaign": "zz"}"#, "hex");
        check(r#"{"v": 1, "op": "submit"}"#, "\"manifest\"");
    }

    #[test]
    fn responses_carry_the_ok_bit() {
        let ok = ok_response([("campaign", Json::Str("aa".into()))]);
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        let err = error_response("nope");
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(err.get("error").and_then(Json::as_str), Some("nope"));
        let ev = event("done", [("code", Json::UInt(0))]);
        assert_eq!(ev.get("event").and_then(Json::as_str), Some("done"));
    }
}
