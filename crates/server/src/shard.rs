//! Splitting a check job into shard jobs and deterministically merging
//! the shard reports back into the report the unsharded run would have
//! produced.
//!
//! A manifest job opts in with `"shards": K`. Expansion rewrites it
//! into `K` jobs with ids `{id}#0 .. {id}#{K-1}` whose payloads carry
//! `shard_index`/`shard_of` instead of `shards`; the worker's check
//! runner maps those onto [`chess_core::ShardSpec`]. The merge then
//! leans on the core guarantees:
//!
//! - `dfs` (no reduction, no horizon): shards are contiguous slices of
//!   the root decision frontier, so
//!   [`chess_core::merge_contiguous_shards`] reproduces the sequential
//!   report **byte-for-byte** — same outcome, same counterexample
//!   execution index, same stats line.
//! - `random:<seed>`: shards are a deterministic seed/budget split
//!   (walker `i` uses `seed + i` and its slice of the execution
//!   budget), merged with [`chess_core::merge_seed_shards`]. The result
//!   is deterministic and matches the in-process `--jobs K` random
//!   walk, but is *not* the sequential single-walker report.
//!
//! `cb:<B>` and `--reduce` searches are rejected at expansion time:
//! context-bound and sleep-set state is path-dependent, so slicing the
//! root frontier changes what the inner strategy sees and the merged
//! report would not equal the unsharded one. Rejecting loudly beats
//! merging wrongly.

use chess_bench::Json;
use chess_core::procpool::JobSpec;
use chess_core::{merge_contiguous_shards, merge_seed_shards, SearchReport};

use crate::campaign::{JobResult, Manifest, Verdict, VerdictOutcome};

/// Separator between a parent job id and a shard index.
pub const SHARD_SEP: char = '#';

/// Most shards one job may request: far beyond any useful fan-out, and
/// low enough that a typo (`"shards": 100000`) fails fast.
pub const MAX_SHARDS: usize = 256;

/// How a sharded job's reports recombine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MergeKind {
    /// Contiguous root slices; merge is byte-identical to sequential.
    Dfs,
    /// Seed/budget split; merge is deterministic but seed-split.
    Random,
}

/// How many shards a job asks for (1 = unsharded), with validation.
///
/// # Errors
///
/// Rejects `shards` outside `1..=MAX_SHARDS` and — for actual splits —
/// job shapes whose merge would not be deterministic: non-`check`
/// kinds, `cb:<B>` strategies, reduced searches, and explicit
/// `shard_index`/`shard_of` fields (those are expansion outputs, not
/// manifest inputs).
pub fn shard_count(job: &Json) -> Result<usize, String> {
    let Some(n) = job.get("shards") else {
        return Ok(1);
    };
    let n = n.as_u64().ok_or("\"shards\" must be a positive integer")? as usize;
    if n == 0 || n > MAX_SHARDS {
        return Err(format!("\"shards\" must be in 1..={MAX_SHARDS}, got {n}"));
    }
    if n > 1 {
        merge_kind(job)?;
    }
    Ok(n)
}

/// Classifies the job's merge, rejecting unshardable shapes.
fn merge_kind(job: &Json) -> Result<MergeKind, String> {
    let kind = job.get("kind").and_then(Json::as_str).unwrap_or("check");
    if kind != "check" {
        return Err(format!("only check jobs shard, not kind '{kind}'"));
    }
    if job.get("shard_index").is_some() || job.get("shard_of").is_some() {
        return Err("shard_index/shard_of are internal fields; use \"shards\"".to_string());
    }
    if job.get("reduce").and_then(Json::as_bool) == Some(true) {
        return Err("a reduced search cannot shard: sleep sets depend on the \
             whole exploration order, so the merged report would not \
             equal the unsharded one"
            .to_string());
    }
    match job.get("strategy").and_then(Json::as_str).unwrap_or("dfs") {
        "dfs" => Ok(MergeKind::Dfs),
        s if s.starts_with("random:") => Ok(MergeKind::Random),
        s => Err(format!(
            "strategy '{s}' cannot shard: context-bound state is \
             path-dependent, so root slices would not merge to the \
             sequential report (shardable: dfs, random:<seed>)"
        )),
    }
}

/// Expands every `"shards": K` job into `K` shard jobs; unsharded jobs
/// pass through untouched. Order is manifest order, shards in index
/// order.
///
/// # Errors
///
/// Everything [`shard_count`] rejects, plus id collisions between an
/// expanded shard id and another job.
pub fn expand_jobs(jobs: &[JobSpec]) -> Result<Vec<JobSpec>, String> {
    let mut out = Vec::with_capacity(jobs.len());
    for job in jobs {
        let json =
            Json::parse(&job.payload).map_err(|e| format!("job {:?}: payload: {e}", job.id))?;
        let shards = shard_count(&json).map_err(|e| format!("job {:?}: {e}", job.id))?;
        if shards == 1 {
            out.push(job.clone());
            continue;
        }
        for index in 0..shards {
            out.push(JobSpec {
                id: format!("{}{SHARD_SEP}{index}", job.id),
                payload: shard_payload(&json, index, shards),
            });
        }
    }
    let mut seen = std::collections::HashSet::new();
    for job in &out {
        if !seen.insert(job.id.as_str()) {
            return Err(format!(
                "expanded job id {:?} collides with another job \
                 (a job id ending in '{SHARD_SEP}<n>' clashed with a sharded job)",
                job.id
            ));
        }
    }
    Ok(out)
}

/// The payload for shard `index` of `of`: the parent object with
/// `shards` dropped and `shard_index`/`shard_of` added.
fn shard_payload(job: &Json, index: usize, of: usize) -> String {
    let Json::Object(fields) = job else {
        unreachable!("validated jobs are objects");
    };
    let mut fields: Vec<(String, Json)> = fields
        .iter()
        .filter(|(k, _)| k != "shards")
        .cloned()
        .collect();
    fields.push(("shard_index".to_string(), Json::UInt(index as u64)));
    fields.push(("shard_of".to_string(), Json::UInt(of as u64)));
    Json::Object(fields).to_string_pretty()
}

/// Collapses shard-level verdicts back to manifest-level verdicts, in
/// manifest order. Unsharded jobs pass through; a sharded job becomes
/// one merged verdict — or a quarantine carrying every failed shard's
/// evidence if any shard was quarantined.
///
/// # Errors
///
/// Internal-consistency violations only: a missing shard verdict, a
/// malformed result payload, or a shard result without a report.
pub fn merge_verdicts(manifest: &Manifest, verdicts: &[Verdict]) -> Result<Vec<Verdict>, String> {
    let by_id: std::collections::HashMap<&str, &Verdict> =
        verdicts.iter().map(|v| (v.id.as_str(), v)).collect();
    let mut out = Vec::with_capacity(manifest.jobs.len());
    for job in &manifest.jobs {
        let json =
            Json::parse(&job.payload).map_err(|e| format!("job {:?}: payload: {e}", job.id))?;
        let shards = shard_count(&json).map_err(|e| format!("job {:?}: {e}", job.id))?;
        if shards == 1 {
            let v = by_id
                .get(job.id.as_str())
                .ok_or_else(|| format!("internal: job {:?} has no verdict", job.id))?;
            out.push((*v).clone());
            continue;
        }
        let kind = merge_kind(&json).map_err(|e| format!("job {:?}: {e}", job.id))?;
        let mut parts = Vec::with_capacity(shards);
        for index in 0..shards {
            let id = format!("{}{SHARD_SEP}{index}", job.id);
            let v = by_id
                .get(id.as_str())
                .ok_or_else(|| format!("internal: shard {id:?} has no verdict"))?;
            parts.push((index, *v));
        }
        out.push(merge_shard_verdicts(&job.id, kind, &parts)?);
    }
    Ok(out)
}

/// Merges one job's shard verdicts (all of them, in index order).
fn merge_shard_verdicts(
    id: &str,
    kind: MergeKind,
    parts: &[(usize, &Verdict)],
) -> Result<Verdict, String> {
    let attempts = parts.iter().map(|(_, v)| v.attempts).max().unwrap_or(1);
    let mut failures = Vec::new();
    let mut reports: Vec<SearchReport> = Vec::with_capacity(parts.len());
    for (index, v) in parts {
        match &v.outcome {
            VerdictOutcome::Done { payload } => {
                let result = JobResult::from_payload(payload)
                    .map_err(|e| format!("shard {id}{SHARD_SEP}{index}: {e}"))?;
                let report = result.report.ok_or_else(|| {
                    format!("internal: shard {id}{SHARD_SEP}{index} result has no report")
                })?;
                reports.push(report);
            }
            VerdictOutcome::Quarantined { failures: f } => {
                failures.extend(f.iter().map(|f| format!("shard {index}: {f}")));
            }
        }
    }
    if !failures.is_empty() {
        return Ok(Verdict {
            id: id.to_string(),
            attempts,
            outcome: VerdictOutcome::Quarantined { failures },
        });
    }
    let merged = match kind {
        MergeKind::Dfs => merge_contiguous_shards(&reports),
        MergeKind::Random => merge_seed_shards(&reports),
    };
    let result = JobResult {
        code: merged.outcome.exit_code(),
        line: merged.deterministic_line(),
        report: Some(merged),
    };
    Ok(Verdict {
        id: id.to_string(),
        attempts,
        outcome: VerdictOutcome::Done {
            payload: result.to_payload(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::parse_manifest;
    use chess_core::{SearchOutcome, SearchStats};

    fn accept_all(_: &Json) -> Result<(), String> {
        Ok(())
    }

    fn manifest(text: &str) -> Manifest {
        parse_manifest(&Json::parse(text).unwrap(), "m", accept_all).unwrap()
    }

    fn done(id: &str, result: &JobResult) -> Verdict {
        Verdict {
            id: id.to_string(),
            attempts: 1,
            outcome: VerdictOutcome::Done {
                payload: result.to_payload(),
            },
        }
    }

    fn complete(executions: u64) -> JobResult {
        let report = SearchReport {
            outcome: SearchOutcome::Complete,
            stats: SearchStats {
                executions,
                ..Default::default()
            },
        };
        JobResult {
            code: report.outcome.exit_code(),
            line: report.deterministic_line(),
            report: Some(report),
        }
    }

    #[test]
    fn expansion_splits_and_renames() {
        let m = manifest(
            r#"{"jobs": [
                {"id": "plain", "workload": "counter"},
                {"id": "wide", "workload": "counter", "shards": 3, "max_executions": 100}
            ]}"#,
        );
        let jobs = expand_jobs(&m.jobs).unwrap();
        let ids: Vec<&str> = jobs.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids, ["plain", "wide#0", "wide#1", "wide#2"]);
        let shard1 = Json::parse(&jobs[2].payload).unwrap();
        assert_eq!(shard1.get("shard_index").and_then(Json::as_u64), Some(1));
        assert_eq!(shard1.get("shard_of").and_then(Json::as_u64), Some(3));
        assert!(shard1.get("shards").is_none(), "shards must be dropped");
        assert_eq!(
            shard1.get("max_executions").and_then(Json::as_u64),
            Some(100),
            "other knobs ride along"
        );
    }

    #[test]
    fn unshardable_shapes_are_rejected() {
        let check = |job: &str, needle: &str| {
            let err = shard_count(&Json::parse(job).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        };
        check(r#"{"id": "x", "shards": 0}"#, "1..=");
        check(r#"{"id": "x", "shards": 1000}"#, "1..=");
        check(r#"{"id": "x", "shards": 2, "kind": "fuzz"}"#, "only check");
        check(r#"{"id": "x", "shards": 2, "reduce": true}"#, "reduced");
        check(r#"{"id": "x", "shards": 2, "strategy": "cb:2"}"#, "cb:2");
        check(
            r#"{"id": "x", "shards": 2, "shard_index": 0}"#,
            "internal fields",
        );
        // Shardable shapes parse clean.
        for ok in [
            r#"{"id": "x", "shards": 2}"#,
            r#"{"id": "x", "shards": 2, "strategy": "dfs"}"#,
            r#"{"id": "x", "shards": 2, "strategy": "random:7"}"#,
            r#"{"id": "x", "strategy": "cb:2"}"#, // unsharded cb is fine
        ] {
            assert!(shard_count(&Json::parse(ok).unwrap()).is_ok(), "{ok}");
        }
    }

    #[test]
    fn expansion_detects_id_collisions() {
        let m = manifest(
            r#"{"jobs": [
                {"id": "a#0", "workload": "counter"},
                {"id": "a", "workload": "counter", "shards": 2}
            ]}"#,
        );
        let err = expand_jobs(&m.jobs).unwrap_err();
        assert!(err.contains("collides"), "{err}");
    }

    #[test]
    fn merge_collapses_shards_in_manifest_order() {
        let m = manifest(
            r#"{"jobs": [
                {"id": "wide", "workload": "counter", "shards": 2},
                {"id": "plain", "workload": "counter"}
            ]}"#,
        );
        // Completion order is scrambled; merge must not care.
        let verdicts = vec![
            done("plain", &complete(5)),
            done("wide#1", &complete(3)),
            done("wide#0", &complete(4)),
        ];
        let merged = merge_verdicts(&m, &verdicts).unwrap();
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].id, "wide");
        assert_eq!(merged[1].id, "plain");
        let VerdictOutcome::Done { payload } = &merged[0].outcome else {
            panic!("expected done");
        };
        let result = JobResult::from_payload(payload).unwrap();
        assert_eq!(result.report.unwrap().stats.executions, 7, "4 + 3");
    }

    #[test]
    fn quarantined_shard_quarantines_the_job_with_evidence() {
        let m = manifest(r#"{"jobs": [{"id": "w", "workload": "counter", "shards": 2}]}"#);
        let verdicts = vec![
            done("w#0", &complete(4)),
            Verdict {
                id: "w#1".to_string(),
                attempts: 3,
                outcome: VerdictOutcome::Quarantined {
                    failures: vec!["worker died".to_string()],
                },
            },
        ];
        let merged = merge_verdicts(&m, &verdicts).unwrap();
        let VerdictOutcome::Quarantined { failures } = &merged[0].outcome else {
            panic!("expected quarantine");
        };
        assert_eq!(failures, &["shard 1: worker died"]);
        assert_eq!(merged[0].attempts, 3);
    }

    #[test]
    fn missing_shard_verdict_is_an_internal_error() {
        let m = manifest(r#"{"jobs": [{"id": "w", "workload": "counter", "shards": 2}]}"#);
        let verdicts = vec![done("w#0", &complete(4))];
        let err = merge_verdicts(&m, &verdicts).unwrap_err();
        assert!(err.contains("w#1"), "{err}");
    }
}
