//! Campaign manifests, verdicts, journals, and reports — the machinery
//! shared by the one-shot `fair-chess serve` front end and the
//! long-running daemon.
//!
//! A campaign is a JSON manifest with a `jobs` array. Each job reaches
//! exactly one terminal [`Verdict`], verdicts are journaled atomically
//! as they arrive, and the final report is rendered in manifest order
//! from deterministic per-job lines — which is what lets a resumed (or
//! cached) campaign reprint its report byte-for-byte.
//!
//! The workload table lives above this crate (in the CLI), so
//! everything that must check a job's semantics takes a *validator*
//! callback instead of hard-coding one.

use std::collections::{HashMap, HashSet};
use std::path::Path;

use chess_bench::{read_journal, write_atomic, Json};
use chess_core::procpool::{JobOutcome, JobSpec, JobVerdict};
use chess_core::{exitcode, SearchReport};

/// Campaign journal format version.
pub const CAMPAIGN_JOURNAL_VERSION: u64 = 1;

/// Validates one job object from a manifest without running it.
///
/// The canonical implementation is the CLI's `workercmd::validate_job`;
/// it is injected because the workload table is defined above this
/// crate.
pub type JobValidator = fn(&Json) -> Result<(), String>;

/// A validated campaign manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Jobs in manifest order; payload is the canonicalized job object.
    pub jobs: Vec<JobSpec>,
    /// FNV-1a digest of the canonicalized manifest text, stored in the
    /// journal so a resume rejects a journal from a different campaign
    /// and the daemon's store keys campaigns content-addressably.
    pub digest: u64,
}

/// A terminal job verdict as the campaign layer records it: failures
/// are kept as display strings so the journal round-trips them exactly
/// and a resumed report reprints byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The job id from the manifest.
    pub id: String,
    /// Attempts consumed to reach the terminal state.
    pub attempts: u32,
    /// What the job ended as.
    pub outcome: VerdictOutcome,
}

/// The two terminal states of a campaign job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerdictOutcome {
    /// The job produced a result payload (a serialized [`JobResult`]).
    Done {
        /// The worker's result payload.
        payload: String,
    },
    /// The job was quarantined after exhausting its attempts.
    Quarantined {
        /// One display string per failed attempt.
        failures: Vec<String>,
    },
}

impl Verdict {
    /// Converts a pool verdict into the journaled form.
    pub fn from_pool(v: &JobVerdict) -> Verdict {
        Verdict {
            id: v.id.clone(),
            attempts: v.attempts,
            outcome: match &v.outcome {
                JobOutcome::Done { payload } => VerdictOutcome::Done {
                    payload: payload.clone(),
                },
                JobOutcome::Quarantined { failures } => VerdictOutcome::Quarantined {
                    failures: failures.iter().map(|f| f.to_string()).collect(),
                },
            },
        }
    }
}

/// What one campaign job produced: the exit code its outcome maps to
/// under the documented 0–7 contract, a summary line with no wall-clock
/// field, and — for `check` jobs — the full search report, which is how
/// shard workers ship mergeable results to the coordinator.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Exit-code contribution of this job.
    pub code: u8,
    /// Deterministic one-line outcome summary.
    pub line: String,
    /// The full report, when the job was a search.
    pub report: Option<SearchReport>,
}

impl JobResult {
    /// Serializes the result as the pool's result payload.
    pub fn to_payload(&self) -> String {
        let mut fields = vec![
            ("code", Json::UInt(u64::from(self.code))),
            ("line", Json::Str(self.line.clone())),
        ];
        if let Some(report) = &self.report {
            fields.push(("report", chess_bench::report_to_json(report)));
        }
        Json::object(fields).to_string_pretty()
    }

    /// Parses a result payload written by [`JobResult::to_payload`] (or
    /// by older writers that never included a report).
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_payload(payload: &str) -> Result<JobResult, String> {
        let json = Json::parse(payload).map_err(|e| format!("job result payload: {e}"))?;
        Ok(JobResult {
            code: json
                .get("code")
                .and_then(Json::as_u64)
                .ok_or("job result has no code")? as u8,
            line: json
                .get("line")
                .and_then(Json::as_str)
                .ok_or("job result has no line")?
                .to_string(),
            report: json
                .get("report")
                .map(chess_bench::report_from_json)
                .transpose()?,
        })
    }
}

// ---------------------------------------------------------------------
// Manifest
// ---------------------------------------------------------------------

/// Parses and validates a manifest document. `origin` names the source
/// (a file path or the protocol peer) in error messages.
///
/// # Errors
///
/// Rejects manifests without a `jobs` array, jobs without a usable id
/// (empty, whitespace — ids travel in space-delimited protocol
/// headers), duplicate ids, and anything the validator rejects.
pub fn parse_manifest(
    doc: &Json,
    origin: &str,
    validate: JobValidator,
) -> Result<Manifest, String> {
    let Some(Json::Array(items)) = doc.get("jobs") else {
        return Err(format!("{origin}: manifest has no \"jobs\" array"));
    };
    let mut jobs = Vec::with_capacity(items.len());
    let mut seen = HashSet::new();
    for (i, item) in items.iter().enumerate() {
        let id = item
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{origin}: job #{i} has no \"id\""))?;
        if id.is_empty() || id.chars().any(char::is_whitespace) {
            return Err(format!(
                "{origin}: job id {id:?} is empty or contains whitespace"
            ));
        }
        if !seen.insert(id.to_string()) {
            return Err(format!("{origin}: duplicate job id {id:?}"));
        }
        validate(item).map_err(|e| format!("{origin}: job {id:?}: {e}"))?;
        jobs.push(JobSpec {
            id: id.to_string(),
            payload: item.to_string_pretty(),
        });
    }
    // Digest the re-serialized document, not the raw bytes, so
    // insignificant whitespace edits do not orphan a journal.
    Ok(Manifest {
        digest: fnv1a(&doc.to_string_pretty()),
        jobs,
    })
}

/// Reads, parses, and validates a manifest file.
///
/// # Errors
///
/// I/O and syntax errors, plus everything [`parse_manifest`] rejects.
pub fn load_manifest(path: &str, validate: JobValidator) -> Result<Manifest, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    parse_manifest(&doc, path, validate)
}

/// FNV-1a over `text` — the digest keying journals and the daemon's
/// content-addressed store.
pub fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------
// Journal + status documents
// ---------------------------------------------------------------------

/// The campaign journal document: version, manifest digest, verdicts
/// in completion order.
pub fn journal_doc(digest: u64, verdicts: &[Verdict]) -> Json {
    Json::object([
        ("version", Json::UInt(CAMPAIGN_JOURNAL_VERSION)),
        ("manifest_digest", Json::UInt(digest)),
        (
            "verdicts",
            Json::array(verdicts.iter().map(verdict_to_json)),
        ),
    ])
}

/// Serializes one verdict for the journal.
pub fn verdict_to_json(v: &Verdict) -> Json {
    let outcome = match &v.outcome {
        VerdictOutcome::Done { payload } => Json::object([
            ("kind", Json::Str("done".to_string())),
            ("payload", Json::Str(payload.clone())),
        ]),
        VerdictOutcome::Quarantined { failures } => Json::object([
            ("kind", Json::Str("quarantined".to_string())),
            (
                "failures",
                Json::array(failures.iter().map(|f| Json::Str(f.clone()))),
            ),
        ]),
    };
    Json::object([
        ("id", Json::Str(v.id.clone())),
        ("attempts", Json::UInt(u64::from(v.attempts))),
        ("outcome", outcome),
    ])
}

/// Parses a verdict serialized by [`verdict_to_json`].
///
/// # Errors
///
/// Returns a message naming the first missing or ill-typed field.
pub fn verdict_from_json(json: &Json) -> Result<Verdict, String> {
    let id = json
        .get("id")
        .and_then(Json::as_str)
        .ok_or("verdict has no id")?
        .to_string();
    let attempts = json
        .get("attempts")
        .and_then(Json::as_u64)
        .ok_or("verdict has no attempts")? as u32;
    let outcome = json.get("outcome").ok_or("verdict has no outcome")?;
    let outcome = match outcome.get("kind").and_then(Json::as_str) {
        Some("done") => VerdictOutcome::Done {
            payload: outcome
                .get("payload")
                .and_then(Json::as_str)
                .ok_or("done verdict has no payload")?
                .to_string(),
        },
        Some("quarantined") => {
            let Some(Json::Array(items)) = outcome.get("failures") else {
                return Err("quarantined verdict has no failures array".to_string());
            };
            let mut failures = Vec::with_capacity(items.len());
            for f in items {
                failures.push(f.as_str().ok_or("failure is not a string")?.to_string());
            }
            VerdictOutcome::Quarantined { failures }
        }
        other => return Err(format!("unknown verdict kind {other:?}")),
    };
    Ok(Verdict {
        id,
        attempts,
        outcome,
    })
}

/// Parses a journal document, checking version and — when `digest` is
/// given — that the journal belongs to that manifest.
///
/// # Errors
///
/// Rejects unknown versions, digest mismatches, and malformed verdicts.
pub fn parse_journal_doc(doc: &Json, digest: Option<u64>) -> Result<Vec<Verdict>, String> {
    let version = doc.get("version").and_then(Json::as_u64);
    if version != Some(CAMPAIGN_JOURNAL_VERSION) {
        return Err(format!("unsupported campaign journal version {version:?}"));
    }
    let recorded = doc.get("manifest_digest").and_then(Json::as_u64);
    if let Some(digest) = digest {
        if recorded != Some(digest) {
            return Err(format!(
                "journal was taken for a different manifest \
                 (digest {recorded:?}, expected {digest})"
            ));
        }
    }
    let Some(Json::Array(items)) = doc.get("verdicts") else {
        return Err("journal has no verdicts array".to_string());
    };
    items.iter().map(verdict_from_json).collect()
}

/// Loads a campaign journal file and returns its verdicts.
///
/// # Errors
///
/// I/O and parse failures, labeled with the path.
pub fn load_campaign_journal(path: &Path, digest: u64) -> Result<Vec<Verdict>, String> {
    let doc = read_journal(path)?;
    parse_journal_doc(&doc, Some(digest)).map_err(|e| format!("{}: {e}", path.display()))
}

/// The at-a-glance progress document: totals only, cheap to poll. The
/// daemon streams the same shape as `watch` events.
pub fn status_doc(verdicts: &[Verdict], total: usize) -> Json {
    let done = verdicts
        .iter()
        .filter(|v| matches!(v.outcome, VerdictOutcome::Done { .. }))
        .count();
    Json::object([
        ("total", Json::UInt(total as u64)),
        ("done", Json::UInt(done as u64)),
        ("quarantined", Json::UInt((verdicts.len() - done) as u64)),
        ("pending", Json::UInt((total - verdicts.len()) as u64)),
    ])
}

/// Atomically rewrites the advisory status file, if one is configured.
/// A reader polling mid-rewrite always sees a complete document —
/// previous or next, never torn.
pub fn write_status(path: Option<&str>, verdicts: &[Verdict], total: usize) {
    let Some(path) = path else { return };
    let doc = status_doc(verdicts, total);
    if let Err(e) = write_atomic(Path::new(path), &doc.to_string_pretty()) {
        // Status is advisory; never fail a campaign over it.
        eprintln!("warning: status file: {e}");
    }
}

// ---------------------------------------------------------------------
// Final report
// ---------------------------------------------------------------------

/// Exit-code precedence for the campaign's worst job: an actual bug
/// outranks a deadlock outranks a livelock outranks a quarantine
/// outranks an exhausted budget outranks clean.
pub fn severity(code: u8) -> u8 {
    match code {
        exitcode::SAFETY_VIOLATION => 5,
        exitcode::DEADLOCK => 4,
        exitcode::LIVELOCK => 3,
        exitcode::INTERNAL => 2,
        exitcode::INCOMPLETE => 1,
        _ => 0,
    }
}

/// Renders the deterministic final report (manifest order, one line per
/// job, then a summary line) and the campaign exit code.
///
/// # Errors
///
/// Fails when a job has no verdict or a result payload is malformed —
/// both internal-consistency violations, not user errors.
pub fn render_report(manifest: &Manifest, verdicts: &[Verdict]) -> Result<(String, u8), String> {
    let by_id: HashMap<&str, &Verdict> = verdicts.iter().map(|v| (v.id.as_str(), v)).collect();
    let (mut done, mut quarantined) = (0usize, 0usize);
    let mut worst = exitcode::CLEAN;
    let mut out = String::new();
    for job in &manifest.jobs {
        let Some(v) = by_id.get(job.id.as_str()) else {
            return Err(format!("internal: job {:?} has no verdict", job.id));
        };
        let code = match &v.outcome {
            VerdictOutcome::Done { payload } => {
                let result =
                    JobResult::from_payload(payload).map_err(|e| format!("job {:?}: {e}", v.id))?;
                out.push_str(&format!("{}: {}\n", v.id, result.line));
                done += 1;
                result.code
            }
            VerdictOutcome::Quarantined { failures } => {
                out.push_str(&format!(
                    "{}: quarantined after {} attempts ({})\n",
                    v.id,
                    v.attempts,
                    failures.join("; ")
                ));
                quarantined += 1;
                exitcode::INTERNAL
            }
        };
        if severity(code) > severity(worst) {
            worst = code;
        }
    }
    out.push_str(&format!(
        "campaign: {done} of {} jobs done, {quarantined} quarantined\n",
        manifest.jobs.len()
    ));
    Ok((out, worst))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accept_all(_: &Json) -> Result<(), String> {
        Ok(())
    }

    fn sample_verdicts() -> Vec<Verdict> {
        vec![
            Verdict {
                id: "a".to_string(),
                attempts: 1,
                outcome: VerdictOutcome::Done {
                    payload: "{\"code\": 0, \"line\": \"search complete\"}".to_string(),
                },
            },
            Verdict {
                id: "b".to_string(),
                attempts: 3,
                outcome: VerdictOutcome::Quarantined {
                    failures: vec![
                        "worker died".to_string(),
                        "watchdog timeout".to_string(),
                        "protocol violation: \"!!\"".to_string(),
                    ],
                },
            },
        ]
    }

    #[test]
    fn journal_round_trips_verdicts() {
        let verdicts = sample_verdicts();
        let doc = journal_doc(7, &verdicts);
        let parsed = Json::parse(&doc.to_string_pretty()).unwrap();
        let back = parse_journal_doc(&parsed, Some(7)).unwrap();
        assert_eq!(back, verdicts);
        let err = parse_journal_doc(&parsed, Some(8)).unwrap_err();
        assert!(err.contains("different manifest"), "{err}");
    }

    #[test]
    fn severity_orders_the_exit_code_contract() {
        // 1 > 4 > 5 > 7 > 3 > 0
        let order = [
            exitcode::SAFETY_VIOLATION,
            exitcode::DEADLOCK,
            exitcode::LIVELOCK,
            exitcode::INTERNAL,
            exitcode::INCOMPLETE,
            exitcode::CLEAN,
        ];
        for pair in order.windows(2) {
            assert!(
                severity(pair[0]) > severity(pair[1]),
                "{} should outrank {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn manifest_digest_ignores_whitespace_but_not_content() {
        let a = Json::parse(r#"{"jobs": [{"id": "j1", "workload": "counter"}]}"#).unwrap();
        let b =
            Json::parse("{\n  \"jobs\": [ {\"id\": \"j1\",\n    \"workload\": \"counter\"} ]\n}")
                .unwrap();
        let c = Json::parse(r#"{"jobs": [{"id": "j1", "workload": "racy"}]}"#).unwrap();
        let da = parse_manifest(&a, "a", accept_all).unwrap().digest;
        let db = parse_manifest(&b, "b", accept_all).unwrap().digest;
        let dc = parse_manifest(&c, "c", accept_all).unwrap().digest;
        assert_eq!(da, db, "whitespace must not orphan a journal");
        assert_ne!(da, dc, "content changes must be detected");
    }

    #[test]
    fn manifest_rejects_bad_jobs() {
        let check = |text: &str, needle: &str| {
            let doc = Json::parse(text).unwrap();
            let err = parse_manifest(&doc, "m", accept_all).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        };
        check(r#"{"work": []}"#, "no \"jobs\" array");
        check(r#"{"jobs": [{"workload": "counter"}]}"#, "no \"id\"");
        check(r#"{"jobs": [{"id": "a b"}]}"#, "whitespace");
        check(r#"{"jobs": [{"id": "x"}, {"id": "x"}]}"#, "duplicate");
        let doc = Json::parse(r#"{"jobs": [{"id": "x"}]}"#).unwrap();
        let err = parse_manifest(&doc, "m", |_| Err("nope".to_string())).unwrap_err();
        assert!(err.contains("nope"), "{err}");
    }

    #[test]
    fn job_result_payload_round_trips_with_and_without_report() {
        let bare = JobResult {
            code: 4,
            line: "deadlock: both forks held (execution 9) — 12 executions".to_string(),
            report: None,
        };
        assert_eq!(JobResult::from_payload(&bare.to_payload()).unwrap(), bare);
        let with_report = JobResult {
            code: 0,
            line: "search complete — 3 executions".to_string(),
            report: Some(SearchReport {
                outcome: chess_core::SearchOutcome::Complete,
                stats: chess_core::SearchStats {
                    executions: 3,
                    ..Default::default()
                },
            }),
        };
        assert_eq!(
            JobResult::from_payload(&with_report.to_payload()).unwrap(),
            with_report
        );
    }

    #[test]
    fn report_renders_in_manifest_order_with_worst_code() {
        let doc = Json::parse(r#"{"jobs": [{"id": "a"}, {"id": "b"}]}"#).unwrap();
        let manifest = parse_manifest(&doc, "m", accept_all).unwrap();
        // Completion order b-then-a must not affect the printed order.
        let verdicts: Vec<Verdict> = sample_verdicts().into_iter().rev().collect();
        let (text, code) = render_report(&manifest, &verdicts).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("a: search complete"), "{text}");
        assert!(lines[1].starts_with("b: quarantined after 3"), "{text}");
        assert_eq!(lines[2], "campaign: 1 of 2 jobs done, 1 quarantined");
        assert_eq!(code, exitcode::INTERNAL);
    }
}
