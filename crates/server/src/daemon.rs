//! The campaign daemon: a socket front end over the process pool and
//! the persistent store.
//!
//! One daemon owns one `--store` directory and one listen address.
//! Campaigns are keyed by manifest digest and run strictly FIFO (one
//! at a time — the pool underneath already saturates the machine);
//! every verdict is journaled to the store the moment it arrives, so
//! the daemon itself is crash-only: `kill -9` it at any instant,
//! restart it on the same store, and the startup scan re-queues every
//! unfinished campaign exactly where the journal left it while
//! finished ones keep answering `results` byte-for-byte.
//!
//! Submitting a manifest whose digest the store already holds never
//! re-executes anything: the response says `cached: true` and the
//! stored verdicts answer for it. Submitting genuinely new work
//! persists the manifest *before* acknowledging, so an acknowledged
//! submit survives any crash.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use chess_bench::{JournalWriter, Json};
use chess_core::exitcode;
use chess_core::procpool::{JobSpec, PoolConfig, ProcessWorkerFactory, Supervisor};

use crate::campaign::{
    journal_doc, parse_manifest, JobResult, JobValidator, Manifest, Verdict, VerdictOutcome,
};
use crate::net::{Listen, Stream};
use crate::protocol::{error_response, event, ok_response, parse_request, to_line, Request};
use crate::shard::{expand_jobs, merge_verdicts};
use crate::store::{digest_hex, parse_manifest_text, Store};

/// Runs a leftover job in-process when no worker can be spawned at all
/// (the same degraded path `fair-chess serve` has). Takes the job
/// payload, returns the result payload.
pub type FallbackRunner = fn(&str) -> Result<String, String>;

/// Everything a daemon needs to run.
pub struct DaemonConfig {
    /// Where to listen.
    pub listen: Listen,
    /// The persistent store root.
    pub store_dir: PathBuf,
    /// Pool sizing and watchdog knobs for each campaign.
    pub pool: PoolConfig,
    /// The worker binary to re-exec for pool slots.
    pub worker_program: PathBuf,
    /// Arguments for the worker binary.
    pub worker_args: Vec<String>,
    /// Validates manifest jobs at submit time.
    pub validator: JobValidator,
    /// The in-process degraded runner, if the host provides one.
    pub fallback: Option<FallbackRunner>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Queued,
    Running,
    Done,
}

struct Campaign {
    manifest: Manifest,
    expanded: Vec<JobSpec>,
    /// Shard-level verdicts, in completion order (mirrors the journal).
    verdicts: Vec<Verdict>,
    phase: Phase,
    cancelled: bool,
    stop: Arc<AtomicBool>,
}

impl Campaign {
    fn complete(&self) -> bool {
        self.verdicts.len() == self.expanded.len()
    }

    fn state_str(&self) -> &'static str {
        if self.cancelled {
            "cancelled"
        } else {
            match self.phase {
                Phase::Queued => "queued",
                Phase::Running => "running",
                Phase::Done => "done",
            }
        }
    }

    /// The merged final report `(text, exit code)`; only meaningful
    /// once complete.
    fn report(&self) -> Result<(String, u8), String> {
        let merged = merge_verdicts(&self.manifest, &self.verdicts)?;
        crate::campaign::render_report(&self.manifest, &merged)
    }
}

struct Inner {
    campaigns: BTreeMap<u64, Campaign>,
    queue: VecDeque<u64>,
    shutdown: bool,
    /// Bumped on every observable change; watchers wait on it.
    seq: u64,
}

struct Shared {
    inner: Mutex<Inner>,
    cond: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().expect("daemon state poisoned")
    }

    /// Mutates the state, bumps the change sequence, and wakes waiters.
    fn publish(&self, f: impl FnOnce(&mut Inner)) {
        let mut inner = self.lock();
        f(&mut inner);
        inner.seq += 1;
        drop(inner);
        self.cond.notify_all();
    }
}

struct Ctx {
    shared: Shared,
    store: Store,
    pool: PoolConfig,
    worker_program: PathBuf,
    worker_args: Vec<String>,
    validator: JobValidator,
    fallback: Option<FallbackRunner>,
}

/// Runs the daemon until a `shutdown` request: binds the listener,
/// resumes the store, and serves the protocol.
///
/// # Errors
///
/// Startup failures only (bad address, unusable store); once serving,
/// per-connection and per-campaign failures are reported to the peer
/// or stderr instead of stopping the daemon.
pub fn run_daemon(config: DaemonConfig) -> Result<(), String> {
    let store = Store::open(&config.store_dir)?;
    let ctx = Arc::new(Ctx {
        shared: Shared {
            inner: Mutex::new(Inner {
                campaigns: BTreeMap::new(),
                queue: VecDeque::new(),
                shutdown: false,
                seq: 0,
            }),
            cond: Condvar::new(),
        },
        store,
        pool: config.pool,
        worker_program: config.worker_program,
        worker_args: config.worker_args,
        validator: config.validator,
        fallback: config.fallback,
    });

    let (finished, queued) = resume_store(&ctx)?;
    let listener = config.listen.bind()?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("listener: {e}"))?;
    println!(
        "daemon: listening on {} (store {}, {finished} finished, {queued} resumed)",
        config.listen,
        config.store_dir.display()
    );
    let _ = std::io::stdout().flush();

    let runner = {
        let ctx = Arc::clone(&ctx);
        std::thread::spawn(move || runner_loop(&ctx))
    };
    loop {
        if ctx.shared.lock().shutdown {
            break;
        }
        match listener.accept() {
            Ok(stream) => {
                let ctx = Arc::clone(&ctx);
                std::thread::spawn(move || handle_client(stream, &ctx));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => {
                eprintln!("daemon: accept: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    runner
        .join()
        .map_err(|_| "runner thread panicked".to_string())?;
    if let Listen::Unix(path) = &config.listen {
        let _ = std::fs::remove_file(path);
    }
    println!("daemon: shut down");
    Ok(())
}

/// Loads every stored campaign into memory and queues the unfinished,
/// uncancelled ones. Returns `(finished, queued)` counts.
fn resume_store(ctx: &Ctx) -> Result<(usize, usize), String> {
    let (stored, warnings) = ctx.store.scan()?;
    for w in warnings {
        eprintln!("daemon: store: {w}");
    }
    let (mut finished, mut queued) = (0usize, 0usize);
    let mut inner = ctx.shared.lock();
    for c in stored {
        let origin = format!("store campaign {}", digest_hex(c.digest));
        let manifest = match parse_manifest_text(&c.manifest_text)
            .and_then(|doc| parse_manifest(&doc, &origin, ctx.validator))
        {
            Ok(m) => m,
            Err(e) => {
                eprintln!("daemon: store: skipping {origin}: {e}");
                continue;
            }
        };
        if manifest.digest != c.digest {
            eprintln!(
                "daemon: store: skipping {origin}: manifest digests to {}",
                digest_hex(manifest.digest)
            );
            continue;
        }
        let expanded = match expand_jobs(&manifest.jobs) {
            Ok(jobs) => jobs,
            Err(e) => {
                eprintln!("daemon: store: skipping {origin}: {e}");
                continue;
            }
        };
        let campaign = Campaign {
            phase: if c.cancelled || c.verdicts.len() == expanded.len() {
                Phase::Done
            } else {
                Phase::Queued
            },
            manifest,
            expanded,
            verdicts: c.verdicts,
            cancelled: c.cancelled,
            stop: Arc::new(AtomicBool::new(c.cancelled)),
        };
        if campaign.phase == Phase::Queued {
            inner.queue.push_back(c.digest);
            queued += 1;
        } else {
            finished += 1;
        }
        inner.campaigns.insert(c.digest, campaign);
    }
    Ok((finished, queued))
}

// ---------------------------------------------------------------------
// The campaign runner (one thread, FIFO)
// ---------------------------------------------------------------------

fn runner_loop(ctx: &Arc<Ctx>) {
    loop {
        let digest = {
            let mut inner = ctx.shared.lock();
            loop {
                if inner.shutdown {
                    return;
                }
                if let Some(d) = inner.queue.pop_front() {
                    break d;
                }
                inner = ctx.shared.cond.wait(inner).expect("daemon state poisoned");
            }
        };
        run_campaign(ctx, digest);
    }
}

fn run_campaign(ctx: &Arc<Ctx>, digest: u64) {
    let (todo, stop) = {
        let mut inner = ctx.shared.lock();
        let Some(c) = inner.campaigns.get_mut(&digest) else {
            return;
        };
        c.phase = Phase::Running;
        let decided: HashSet<String> = c.verdicts.iter().map(|v| v.id.clone()).collect();
        let todo: Vec<JobSpec> = c
            .expanded
            .iter()
            .filter(|j| !decided.contains(&j.id))
            .cloned()
            .collect();
        let stop = Arc::clone(&c.stop);
        inner.seq += 1;
        drop(inner);
        ctx.shared.cond.notify_all();
        (todo, stop)
    };

    let mut journal = JournalWriter::new(ctx.store.journal_path(digest));
    let mut record = |verdict: Verdict| {
        let mut inner = ctx.shared.lock();
        let Some(c) = inner.campaigns.get_mut(&digest) else {
            return;
        };
        c.verdicts.push(verdict);
        let snapshot = c.verdicts.clone();
        inner.seq += 1;
        drop(inner);
        ctx.shared.cond.notify_all();
        // Journal outside the lock: a slow disk must not stall watchers.
        journal.write(&journal_doc(digest, &snapshot));
    };

    if !todo.is_empty() && !stop.load(Ordering::Acquire) {
        let factory =
            ProcessWorkerFactory::new(ctx.worker_program.clone(), ctx.worker_args.clone());
        let report = Supervisor::new(factory, ctx.pool.clone())
            .with_stop_flag(Arc::clone(&stop))
            .run(todo, |v| record(Verdict::from_pool(v)));
        for w in &report.warnings {
            eprintln!("daemon: campaign {}: {w}", digest_hex(digest));
        }
        if !report.stopped && !report.leftover.is_empty() {
            match ctx.fallback {
                Some(run_job) => {
                    eprintln!(
                        "daemon: campaign {}: no workers available; running {} jobs in-process",
                        digest_hex(digest),
                        report.leftover.len()
                    );
                    for job in &report.leftover {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let outcome = match run_job(&job.payload) {
                            Ok(payload) => VerdictOutcome::Done { payload },
                            Err(e) => VerdictOutcome::Quarantined { failures: vec![e] },
                        };
                        record(Verdict {
                            id: job.id.clone(),
                            attempts: 1,
                            outcome,
                        });
                    }
                }
                None => eprintln!(
                    "daemon: campaign {}: no workers available and no in-process fallback; \
                     {} jobs left undecided",
                    digest_hex(digest),
                    report.leftover.len()
                ),
            }
        }
    }
    for w in journal.warnings() {
        eprintln!("daemon: campaign {}: {w}", digest_hex(digest));
    }

    ctx.shared.publish(|inner| {
        if let Some(c) = inner.campaigns.get_mut(&digest) {
            // A shutdown mid-campaign parks it Queued: still in-flight,
            // resumed by the next daemon on this store.
            c.phase = if c.complete() || c.cancelled {
                Phase::Done
            } else {
                Phase::Queued
            };
        }
    });
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

fn handle_client(stream: Stream, ctx: &Arc<Ctx>) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    let reader = BufReader::new(read_half);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let done = match parse_request(&line) {
            Err(e) => send(&mut writer, &error_response(&e)).is_err(),
            Ok(Request::Watch { campaign }) => do_watch(&mut writer, ctx, campaign).is_err(),
            Ok(request) => {
                let shutdown = request == Request::Shutdown;
                let response = respond(ctx, request);
                send(&mut writer, &response).is_err() || shutdown
            }
        };
        if done {
            return;
        }
    }
}

fn send(writer: &mut Stream, json: &Json) -> std::io::Result<()> {
    writer.write_all(to_line(json).as_bytes())?;
    writer.flush()
}

/// Handles every single-response operation.
fn respond(ctx: &Arc<Ctx>, request: Request) -> Json {
    match request {
        Request::Submit { manifest } => do_submit(ctx, &manifest),
        Request::Status { campaign } => do_status(ctx, campaign),
        Request::Cancel { campaign } => do_cancel(ctx, campaign),
        Request::Results { campaign } => do_results(ctx, campaign),
        Request::Shutdown => do_shutdown(ctx),
        Request::Watch { .. } => unreachable!("watch is handled by the stream loop"),
    }
}

fn do_submit(ctx: &Arc<Ctx>, doc: &Json) -> Json {
    let manifest = match parse_manifest(doc, "submit", ctx.validator) {
        Ok(m) => m,
        Err(e) => return error_response(&e),
    };
    let expanded = match expand_jobs(&manifest.jobs) {
        Ok(jobs) => jobs,
        Err(e) => return error_response(&e),
    };
    let digest = manifest.digest;
    let canonical = doc.to_string_pretty();

    let mut inner = ctx.shared.lock();
    if let Some(c) = inner.campaigns.get(&digest) {
        // Content-addressed hit: never re-execute, answer from memory.
        let mut fields = vec![
            ("campaign", Json::Str(digest_hex(digest))),
            ("cached", Json::Bool(true)),
            ("state", Json::Str(c.state_str().to_string())),
        ];
        if c.phase == Phase::Done && c.complete() {
            if let Ok((_, code)) = c.report() {
                fields.push(("code", Json::UInt(u64::from(code))));
            }
        }
        return ok_response(fields);
    }
    if inner.shutdown {
        return error_response("daemon is shutting down");
    }
    // Persist before acknowledging: an acked submit survives a crash.
    if let Err(e) = ctx.store.admit(digest, &canonical) {
        return error_response(&e);
    }
    let jobs = expanded.len();
    inner.campaigns.insert(
        digest,
        Campaign {
            manifest,
            expanded,
            verdicts: Vec::new(),
            phase: Phase::Queued,
            cancelled: false,
            stop: Arc::new(AtomicBool::new(false)),
        },
    );
    inner.queue.push_back(digest);
    inner.seq += 1;
    drop(inner);
    ctx.shared.cond.notify_all();
    ok_response([
        ("campaign", Json::Str(digest_hex(digest))),
        ("cached", Json::Bool(false)),
        ("state", Json::Str("queued".to_string())),
        ("jobs", Json::UInt(jobs as u64)),
    ])
}

/// One campaign's status object (shard-level counts).
fn status_json(digest: u64, c: &Campaign) -> Json {
    let done = c
        .verdicts
        .iter()
        .filter(|v| matches!(v.outcome, VerdictOutcome::Done { .. }))
        .count();
    Json::object([
        ("campaign", Json::Str(digest_hex(digest))),
        ("state", Json::Str(c.state_str().to_string())),
        ("total", Json::UInt(c.expanded.len() as u64)),
        ("done", Json::UInt(done as u64)),
        ("quarantined", Json::UInt((c.verdicts.len() - done) as u64)),
        (
            "pending",
            Json::UInt((c.expanded.len() - c.verdicts.len()) as u64),
        ),
    ])
}

fn do_status(ctx: &Arc<Ctx>, campaign: Option<u64>) -> Json {
    let inner = ctx.shared.lock();
    match campaign {
        Some(digest) => match inner.campaigns.get(&digest) {
            Some(c) => ok_response([("status", status_json(digest, c))]),
            None => error_response(&format!("unknown campaign {}", digest_hex(digest))),
        },
        None => ok_response([
            ("accepting", Json::Bool(!inner.shutdown)),
            (
                "campaigns",
                Json::array(inner.campaigns.iter().map(|(d, c)| status_json(*d, c))),
            ),
        ]),
    }
}

fn do_cancel(ctx: &Arc<Ctx>, digest: u64) -> Json {
    let mut inner = ctx.shared.lock();
    let Some(c) = inner.campaigns.get_mut(&digest) else {
        return error_response(&format!("unknown campaign {}", digest_hex(digest)));
    };
    if !c.cancelled && c.phase != Phase::Done {
        c.cancelled = true;
        c.stop.store(true, Ordering::Release);
        if c.phase == Phase::Queued {
            c.phase = Phase::Done;
        }
        if let Err(e) = ctx.store.mark_cancelled(digest) {
            eprintln!("daemon: {e}");
        }
        inner.queue.retain(|d| *d != digest);
    }
    let state = inner.campaigns[&digest].state_str().to_string();
    inner.seq += 1;
    drop(inner);
    ctx.shared.cond.notify_all();
    ok_response([
        ("campaign", Json::Str(digest_hex(digest))),
        ("state", Json::Str(state)),
    ])
}

fn do_results(ctx: &Arc<Ctx>, digest: u64) -> Json {
    let inner = ctx.shared.lock();
    let Some(c) = inner.campaigns.get(&digest) else {
        return error_response(&format!("unknown campaign {}", digest_hex(digest)));
    };
    if !c.complete() {
        return error_response(&format!(
            "campaign {} is not finished ({} of {} jobs decided{})",
            digest_hex(digest),
            c.verdicts.len(),
            c.expanded.len(),
            if c.cancelled { ", cancelled" } else { "" },
        ));
    }
    match c.report() {
        Ok((text, code)) => ok_response([
            ("campaign", Json::Str(digest_hex(digest))),
            ("code", Json::UInt(u64::from(code))),
            ("report", Json::Str(text)),
        ]),
        Err(e) => error_response(&e),
    }
}

fn do_shutdown(ctx: &Arc<Ctx>) -> Json {
    ctx.shared.publish(|inner| {
        inner.shutdown = true;
        for c in inner.campaigns.values() {
            // Park the running campaign; queued ones simply never start.
            c.stop.store(true, Ordering::Release);
        }
    });
    ok_response([("state", Json::Str("shutting-down".to_string()))])
}

/// The `watch` stream: replays every verdict so far, then follows the
/// campaign live until it finishes (event `done`) or the daemon parks
/// it for shutdown (event `detached`).
fn do_watch(writer: &mut Stream, ctx: &Arc<Ctx>, digest: u64) -> std::io::Result<()> {
    if !ctx.shared.lock().campaigns.contains_key(&digest) {
        return send(
            writer,
            &error_response(&format!("unknown campaign {}", digest_hex(digest))),
        );
    }
    send(
        writer,
        &ok_response([("campaign", Json::Str(digest_hex(digest)))]),
    )?;
    let mut next = 0usize;
    loop {
        enum Wake {
            Verdicts(Vec<Verdict>, Json),
            Done(Json),
            Detached,
        }
        let wake = {
            let mut inner = ctx.shared.lock();
            loop {
                let Some(c) = inner.campaigns.get(&digest) else {
                    break Wake::Detached;
                };
                if next < c.verdicts.len() {
                    let fresh = c.verdicts[next..].to_vec();
                    next = c.verdicts.len();
                    break Wake::Verdicts(fresh, status_json(digest, c));
                }
                if c.phase == Phase::Done {
                    break Wake::Done(done_event(c));
                }
                if inner.shutdown {
                    break Wake::Detached;
                }
                inner = ctx.shared.cond.wait(inner).expect("daemon state poisoned");
            }
        };
        match wake {
            Wake::Verdicts(fresh, status) => {
                for v in &fresh {
                    send(writer, &verdict_event(digest, v))?;
                }
                let Json::Object(pairs) = status else {
                    unreachable!("status_json builds an object");
                };
                send(writer, &event("status", pairs))?;
            }
            Wake::Done(ev) => return send(writer, &ev),
            Wake::Detached => {
                return send(
                    writer,
                    &event(
                        "detached",
                        [("reason", Json::Str("daemon shutting down".to_string()))],
                    ),
                )
            }
        }
    }
}

fn verdict_event(digest: u64, v: &Verdict) -> Json {
    let mut fields = vec![
        ("campaign", Json::Str(digest_hex(digest))),
        ("id", Json::Str(v.id.clone())),
        ("attempts", Json::UInt(u64::from(v.attempts))),
    ];
    match &v.outcome {
        VerdictOutcome::Done { payload } => match JobResult::from_payload(payload) {
            Ok(result) => {
                fields.push(("code", Json::UInt(u64::from(result.code))));
                fields.push(("line", Json::Str(result.line)));
            }
            Err(e) => fields.push(("malformed", Json::Str(e))),
        },
        VerdictOutcome::Quarantined { failures } => {
            fields.push(("quarantined", Json::Bool(true)));
            fields.push((
                "failures",
                Json::array(failures.iter().map(|f| Json::Str(f.clone()))),
            ));
        }
    }
    event("verdict", fields)
}

fn done_event(c: &Campaign) -> Json {
    if c.cancelled {
        return event(
            "done",
            [
                ("cancelled", Json::Bool(true)),
                ("code", Json::UInt(u64::from(exitcode::INTERRUPTED))),
            ],
        );
    }
    match c.report() {
        Ok((_, code)) => event("done", [("code", Json::UInt(u64::from(code)))]),
        Err(e) => event(
            "done",
            [
                ("code", Json::UInt(u64::from(exitcode::INTERNAL))),
                ("error", Json::Str(e)),
            ],
        ),
    }
}
