//! Socket transport for the daemon protocol: one address type covering
//! unix-domain and TCP sockets, with a matching listener and stream.
//!
//! Address spellings (the `--listen` / `--connect` grammar):
//!
//! ```text
//! unix:/path/to.sock   explicit unix-domain socket
//! tcp:127.0.0.1:7979   explicit TCP
//! /path/to.sock        anything with a '/' defaults to unix
//! 127.0.0.1:7979       anything else defaults to TCP
//! ```

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// A daemon endpoint address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A unix-domain socket path.
    Unix(PathBuf),
    /// A TCP address (`host:port`).
    Tcp(String),
}

impl Listen {
    /// Parses an address spelling (see the module docs for the grammar).
    ///
    /// # Errors
    ///
    /// Rejects empty addresses.
    pub fn parse(text: &str) -> Result<Listen, String> {
        let listen = if let Some(path) = text.strip_prefix("unix:") {
            Listen::Unix(PathBuf::from(path))
        } else if let Some(addr) = text.strip_prefix("tcp:") {
            Listen::Tcp(addr.to_string())
        } else if text.contains('/') {
            Listen::Unix(PathBuf::from(text))
        } else {
            Listen::Tcp(text.to_string())
        };
        match &listen {
            Listen::Unix(p) if p.as_os_str().is_empty() => Err("empty socket path".to_string()),
            Listen::Tcp(a) if a.is_empty() => Err("empty TCP address".to_string()),
            _ => Ok(listen),
        }
    }

    /// Binds a listener on this address. A stale unix socket file (a
    /// previous daemon was `kill -9`ed) is removed and rebound —
    /// running two daemons on one socket path is not supported.
    ///
    /// # Errors
    ///
    /// Propagates bind failures, labeled with the address.
    pub fn bind(&self) -> Result<Listener, String> {
        match self {
            #[cfg(unix)]
            Listen::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)
                        .map_err(|e| format!("remove stale socket {}: {e}", path.display()))?;
                }
                UnixListener::bind(path)
                    .map(Listener::Unix)
                    .map_err(|e| format!("bind {}: {e}", path.display()))
            }
            #[cfg(not(unix))]
            Listen::Unix(path) => Err(format!(
                "unix sockets are not supported on this platform ({})",
                path.display()
            )),
            Listen::Tcp(addr) => TcpListener::bind(addr)
                .map(Listener::Tcp)
                .map_err(|e| format!("bind {addr}: {e}")),
        }
    }

    /// Connects a client stream to this address.
    ///
    /// # Errors
    ///
    /// Propagates connect failures, labeled with the address.
    pub fn connect(&self) -> Result<Stream, String> {
        match self {
            #[cfg(unix)]
            Listen::Unix(path) => UnixStream::connect(path)
                .map(Stream::Unix)
                .map_err(|e| format!("connect {}: {e}", path.display())),
            #[cfg(not(unix))]
            Listen::Unix(path) => Err(format!(
                "unix sockets are not supported on this platform ({})",
                path.display()
            )),
            Listen::Tcp(addr) => TcpStream::connect(addr)
                .map(Stream::Tcp)
                .map_err(|e| format!("connect {addr}: {e}")),
        }
    }
}

impl std::fmt::Display for Listen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Listen::Unix(path) => write!(f, "unix:{}", path.display()),
            Listen::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// A bound daemon listener.
pub enum Listener {
    /// A unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
    /// A TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Switches the listener between blocking and polling accepts (the
    /// daemon polls so it can observe its shutdown flag).
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection.
    ///
    /// # Errors
    ///
    /// Propagates accept failures (including `WouldBlock` when
    /// nonblocking).
    pub fn accept(&self) -> std::io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }
}

/// One protocol connection (either family), readable and writable.
pub enum Stream {
    /// A unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
    /// A TCP stream.
    Tcp(TcpStream),
}

impl Stream {
    /// Clones the handle so one side can buffer reads while the other
    /// writes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `try_clone` failure.
    pub fn try_clone(&self) -> std::io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_spellings_parse() {
        assert_eq!(
            Listen::parse("unix:/tmp/d.sock").unwrap(),
            Listen::Unix(PathBuf::from("/tmp/d.sock"))
        );
        assert_eq!(
            Listen::parse("/tmp/d.sock").unwrap(),
            Listen::Unix(PathBuf::from("/tmp/d.sock"))
        );
        assert_eq!(
            Listen::parse("tcp:127.0.0.1:7979").unwrap(),
            Listen::Tcp("127.0.0.1:7979".to_string())
        );
        assert_eq!(
            Listen::parse("127.0.0.1:7979").unwrap(),
            Listen::Tcp("127.0.0.1:7979".to_string())
        );
        assert!(Listen::parse("unix:").is_err());
        assert!(Listen::parse("tcp:").is_err());
        assert_eq!(
            Listen::parse("unix:/a.sock").unwrap().to_string(),
            "unix:/a.sock"
        );
    }

    #[test]
    fn tcp_listener_round_trips_bytes() {
        let listener = Listen::parse("127.0.0.1:0").unwrap().bind().unwrap();
        let addr = match &listener {
            Listener::Tcp(l) => l.local_addr().unwrap().to_string(),
            #[cfg(unix)]
            _ => unreachable!(),
        };
        let handle = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).unwrap();
            conn.write_all(&buf).unwrap();
        });
        let mut client = Listen::Tcp(addr).connect().unwrap();
        client.write_all(b"hello").unwrap();
        let mut back = [0u8; 5];
        client.read_exact(&mut back).unwrap();
        assert_eq!(&back, b"hello");
        handle.join().unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn stale_unix_sockets_are_rebindable() {
        let path = std::env::temp_dir().join(format!("chess-net-{}.sock", std::process::id()));
        let first = Listen::Unix(path.clone()).bind();
        assert!(first.is_ok());
        // Simulate a kill -9: drop the listener but leave the file.
        drop(first);
        assert!(path.exists(), "socket file outlives the listener");
        let second = Listen::Unix(path.clone()).bind();
        assert!(second.is_ok(), "{:?}", second.err());
        drop(second);
        let _ = std::fs::remove_file(&path);
    }
}
