//! The client side of the daemon protocol: a connection wrapper used
//! by `fair-chess submit/status/watch/cancel/results/shutdown`.
//!
//! # Chaos injection
//!
//! The `garbage` knob of `FAIR_CHESS_CHAOS` (the same variable the
//! campaign workers honor) extends to this protocol: with probability
//! `P` per request the client first sends a deliberately unparsable
//! line and *requires* a structured error back. A daemon that drops
//! the connection — or crashes — over garbage fails the exchange
//! loudly, which is exactly what the chaos smoke test is hunting for.

use std::io::{BufRead, BufReader, Write};

use chess_bench::Json;

use crate::net::{Listen, Stream};
use crate::protocol::{request_to_json, to_line, Request};

/// A connected protocol client.
pub struct Client {
    reader: BufReader<Stream>,
    writer: Stream,
    chaos: Chaos,
    requests: u64,
}

impl Client {
    /// Connects to a daemon and arms chaos injection from the
    /// environment.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: &Listen) -> Result<Client, String> {
        let writer = addr.connect()?;
        let read_half = writer
            .try_clone()
            .map_err(|e| format!("clone connection: {e}"))?;
        Ok(Client {
            reader: BufReader::new(read_half),
            writer,
            chaos: Chaos::from_env(),
            requests: 0,
        })
    }

    /// Sends one request and returns the daemon's response object.
    ///
    /// # Errors
    ///
    /// I/O failures, unparsable responses, and chaos-contract
    /// violations (garbage answered with anything but a structured
    /// error).
    pub fn request(&mut self, request: &Request) -> Result<Json, String> {
        self.requests += 1;
        if self.chaos.roll_garbage(self.requests) {
            eprintln!("client: chaos garbage (request {})", self.requests);
            self.send_line("!!chaos garbage!!\n")?;
            let response = self.read_response()?;
            if response.get("ok").and_then(Json::as_bool) != Some(false) {
                return Err(format!(
                    "chaos contract violated: garbage was answered with {} instead of a \
                     structured error",
                    response.to_string_pretty()
                ));
            }
        }
        self.send_line(&to_line(&request_to_json(request)))?;
        self.read_response()
    }

    /// Reads one streamed event (after a `watch`); `None` on a clean
    /// end of stream.
    ///
    /// # Errors
    ///
    /// I/O failures and unparsable events.
    pub fn read_event(&mut self) -> Result<Option<Json>, String> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("read event: {e}"))?;
        if n == 0 {
            return Ok(None);
        }
        Json::parse(line.trim_end())
            .map(Some)
            .map_err(|e| format!("daemon sent a malformed event: {e}"))
    }

    fn send_line(&mut self, line: &str) -> Result<(), String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send request: {e}"))
    }

    fn read_response(&mut self) -> Result<Json, String> {
        match self.read_event()? {
            Some(json) => Ok(json),
            None => Err("daemon closed the connection mid-request".to_string()),
        }
    }
}

/// Checks a response's `ok` bit, surfacing the daemon's error message.
///
/// # Errors
///
/// The daemon's `error` field when `ok` is false (or the raw document
/// when it is shaped wrong).
pub fn expect_ok(response: Json) -> Result<Json, String> {
    match response.get("ok").and_then(Json::as_bool) {
        Some(true) => Ok(response),
        Some(false) => Err(response
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("daemon refused the request")
            .to_string()),
        None => Err(format!(
            "daemon sent a malformed response: {}",
            response.to_string_pretty()
        )),
    }
}

/// The client-side chaos knobs: only `garbage` (and `seed`) apply to
/// the protocol; `abort`/`hang` stay worker-side.
#[derive(Debug, Clone, Copy, Default)]
struct Chaos {
    garbage: f64,
    seed: u64,
}

impl Chaos {
    fn from_env() -> Chaos {
        let Ok(spec) = std::env::var("FAIR_CHESS_CHAOS") else {
            return Chaos::default();
        };
        let mut c = Chaos::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let Some((key, value)) = part.split_once(':') else {
                continue;
            };
            match key.trim() {
                "garbage" => c.garbage = value.trim().parse().unwrap_or(0.0),
                "seed" => c.seed = value.trim().parse().unwrap_or(0),
                // Worker-side knobs (abort, hang) and typos are the
                // worker's problem to report; stay quiet here.
                _ => {}
            }
        }
        if !(0.0..=1.0).contains(&c.garbage) {
            c.garbage = 0.0;
        }
        c
    }

    /// Deterministic per-request roll (same splitmix64-over-FNV scheme
    /// as the worker's injector, so one seed drives the whole chaos
    /// campaign).
    fn roll_garbage(&self, request: u64) -> bool {
        if self.garbage == 0.0 {
            return false;
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        h = (h ^ request).wrapping_mul(0x0000_0100_0000_01b3);
        h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = h;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        ((z % 1_000_000) as f64) < self.garbage * 1_000_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_rolls_are_deterministic_and_bounded() {
        let chaos = Chaos {
            garbage: 0.5,
            seed: 42,
        };
        let a: Vec<bool> = (0..64).map(|i| chaos.roll_garbage(i)).collect();
        let b: Vec<bool> = (0..64).map(|i| chaos.roll_garbage(i)).collect();
        assert_eq!(a, b, "same seed, same rolls");
        let hits = a.iter().filter(|&&x| x).count();
        assert!((10..=54).contains(&hits), "p=0.5 should hit roughly half");
        let off = Chaos::default();
        assert!((0..64).all(|i| !off.roll_garbage(i)));
    }

    #[test]
    fn expect_ok_separates_the_cases() {
        let ok = Json::parse(r#"{"ok": true, "x": 1}"#).unwrap();
        assert!(expect_ok(ok).is_ok());
        let err = Json::parse(r#"{"ok": false, "error": "nope"}"#).unwrap();
        assert_eq!(expect_ok(err).unwrap_err(), "nope");
        let odd = Json::parse(r#"{"event": "verdict"}"#).unwrap();
        assert!(expect_ok(odd).unwrap_err().contains("malformed"));
    }
}
