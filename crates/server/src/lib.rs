//! # chess-server — the campaign daemon
//!
//! A long-running front end over the checker's process pool: clients
//! submit campaign manifests over a unix or TCP socket, the daemon
//! drives them through [`chess_core::procpool::Supervisor`] one at a
//! time, journals every verdict into a persistent content-addressed
//! store, streams progress to `watch` subscribers, and answers
//! `results` with a deterministic final report.
//!
//! The crate deliberately sits *below* the CLI: it knows nothing about
//! workloads (manifest validation is an injected callback) and nothing
//! about argument parsing. What it does own:
//!
//! - [`protocol`] — the line-delimited JSON wire format and its
//!   versioning rule.
//! - [`campaign`] — manifests, verdicts, journals, and the
//!   deterministic report renderer shared with `fair-chess serve`.
//! - [`shard`] — splitting a check job into `{id}#0..{id}#{K-1}` shard
//!   jobs and merging the shard reports back into exactly the report
//!   the unsharded run would print.
//! - [`store`] — the append-only, digest-keyed campaign store that
//!   makes the daemon crash-only: `kill -9` + restart resumes every
//!   in-flight campaign and re-answers finished ones byte-for-byte.
//! - [`daemon`] / [`client`] — the two ends of the socket.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod client;
pub mod daemon;
pub mod net;
pub mod protocol;
pub mod shard;
pub mod store;

pub use campaign::{
    load_manifest, parse_manifest, render_report, JobResult, JobValidator, Manifest, Verdict,
    VerdictOutcome, CAMPAIGN_JOURNAL_VERSION,
};
pub use client::{expect_ok, Client};
pub use daemon::{run_daemon, DaemonConfig, FallbackRunner};
pub use net::Listen;
pub use protocol::{Request, PROTOCOL_VERSION};
pub use shard::{expand_jobs, merge_verdicts};
pub use store::{digest_hex, parse_digest, Store};
