//! The daemon's persistent campaign store: append-only, content-
//! addressed by manifest digest.
//!
//! Layout under the `--store` root:
//!
//! ```text
//! <root>/campaigns/<digest as 16 hex digits>/
//!     manifest.json    # the canonicalized manifest, written once
//!     journal.json     # {version, manifest_digest, verdicts[]}, atomically rewritten
//!     cancelled        # marker: present iff the campaign was cancelled
//! ```
//!
//! Every write goes through the atomic temp-file + fsync + rename path
//! ([`chess_bench::write_atomic`] / [`chess_bench::JournalWriter`]), so
//! a `kill -9` at any instant leaves each file either at its previous
//! or its next complete content — which is what lets a restarted daemon
//! resume every in-flight campaign and reprint completed reports
//! byte-for-byte. Nothing is ever mutated in place: verdicts only
//! accumulate, and a campaign directory is only ever added to.

use std::path::{Path, PathBuf};

use chess_bench::{read_journal, write_atomic, Json};

use crate::campaign::{journal_doc, parse_journal_doc, Verdict};

/// A campaign store rooted at a directory.
#[derive(Debug, Clone)]
pub struct Store {
    root: PathBuf,
}

/// One campaign as found on disk by a startup scan.
#[derive(Debug, Clone)]
pub struct StoredCampaign {
    /// The manifest digest (the campaign's identity).
    pub digest: u64,
    /// The canonicalized manifest document text.
    pub manifest_text: String,
    /// Verdicts journaled so far (possibly all of them).
    pub verdicts: Vec<Verdict>,
    /// Whether the campaign carries the cancelled marker.
    pub cancelled: bool,
}

/// Renders a digest the way the store and the wire protocol spell it.
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:016x}")
}

/// Parses a digest spelled by [`digest_hex`].
///
/// # Errors
///
/// Rejects anything but exactly 16 hex digits.
pub fn parse_digest(text: &str) -> Result<u64, String> {
    if text.len() != 16 {
        return Err(format!("campaign id must be 16 hex digits, got {text:?}"));
    }
    u64::from_str_radix(text, 16).map_err(|_| format!("campaign id must be hex, got {text:?}"))
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn open(root: &Path) -> Result<Store, String> {
        let campaigns = root.join("campaigns");
        std::fs::create_dir_all(&campaigns)
            .map_err(|e| format!("create store {}: {e}", campaigns.display()))?;
        Ok(Store {
            root: root.to_path_buf(),
        })
    }

    fn campaign_dir(&self, digest: u64) -> PathBuf {
        self.root.join("campaigns").join(digest_hex(digest))
    }

    /// Path of a campaign's journal file (for a [`chess_bench::JournalWriter`]).
    pub fn journal_path(&self, digest: u64) -> PathBuf {
        self.campaign_dir(digest).join("journal.json")
    }

    /// Whether the store already holds this campaign.
    pub fn contains(&self, digest: u64) -> bool {
        self.campaign_dir(digest).join("manifest.json").exists()
    }

    /// Admits a campaign: creates its directory and writes the
    /// canonicalized manifest (idempotent — resubmitting the same
    /// manifest rewrites identical bytes).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn admit(&self, digest: u64, manifest_text: &str) -> Result<(), String> {
        let dir = self.campaign_dir(digest);
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        write_atomic(&dir.join("manifest.json"), manifest_text)
    }

    /// Atomically rewrites a campaign's journal with the given verdicts.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (callers on the hot path should prefer a
    /// [`chess_bench::JournalWriter`] on [`Store::journal_path`], which
    /// retries and degrades instead of failing the campaign).
    pub fn write_journal(&self, digest: u64, verdicts: &[Verdict]) -> Result<(), String> {
        write_atomic(
            &self.journal_path(digest),
            &journal_doc(digest, verdicts).to_string_pretty(),
        )
    }

    /// Marks a campaign cancelled: the startup scan will not resume it.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn mark_cancelled(&self, digest: u64) -> Result<(), String> {
        write_atomic(&self.campaign_dir(digest).join("cancelled"), "cancelled\n")
    }

    /// Loads one stored campaign.
    ///
    /// # Errors
    ///
    /// Fails on missing manifests and corrupt journals; a *missing*
    /// journal is fine (no verdicts yet).
    pub fn load(&self, digest: u64) -> Result<StoredCampaign, String> {
        let dir = self.campaign_dir(digest);
        let manifest_path = dir.join("manifest.json");
        let manifest_text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| format!("read {}: {e}", manifest_path.display()))?;
        let journal_path = self.journal_path(digest);
        let verdicts = if journal_path.exists() {
            let doc = read_journal(&journal_path)?;
            parse_journal_doc(&doc, Some(digest))
                .map_err(|e| format!("{}: {e}", journal_path.display()))?
        } else {
            Vec::new()
        };
        Ok(StoredCampaign {
            digest,
            manifest_text,
            verdicts,
            cancelled: dir.join("cancelled").exists(),
        })
    }

    /// Scans the store and loads every campaign, sorted by digest so a
    /// restarted daemon re-queues work in a stable order.
    ///
    /// # Errors
    ///
    /// Fails only when the campaigns directory cannot be read; a
    /// corrupt individual campaign is skipped with a warning in the
    /// returned list's stead (the daemon logs it).
    pub fn scan(&self) -> Result<(Vec<StoredCampaign>, Vec<String>), String> {
        let campaigns = self.root.join("campaigns");
        let mut found = Vec::new();
        let mut warnings = Vec::new();
        let entries = std::fs::read_dir(&campaigns)
            .map_err(|e| format!("read store {}: {e}", campaigns.display()))?;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Ok(digest) = parse_digest(name) else {
                continue;
            };
            match self.load(digest) {
                Ok(c) => found.push(c),
                Err(e) => warnings.push(format!("skipping campaign {name}: {e}")),
            }
        }
        found.sort_by_key(|c| c.digest);
        Ok((found, warnings))
    }
}

/// Parses a stored manifest text back into a document.
///
/// # Errors
///
/// Propagates syntax errors (possible only if the store was edited by
/// hand — the daemon only writes canonicalized documents).
pub fn parse_manifest_text(text: &str) -> Result<Json, String> {
    Json::parse(text).map_err(|e| format!("stored manifest: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::VerdictOutcome;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chess-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn digests_round_trip_and_reject_garbage() {
        for d in [0u64, 1, u64::MAX, 0xdead_beef_0000_0001] {
            assert_eq!(parse_digest(&digest_hex(d)).unwrap(), d);
        }
        assert!(parse_digest("xyz").is_err());
        assert!(parse_digest("123").is_err());
        assert!(parse_digest("00000000000000000").is_err(), "17 digits");
    }

    #[test]
    fn store_persists_and_scans_campaigns() {
        let root = tempdir("scan");
        let store = Store::open(&root).unwrap();
        assert!(!store.contains(7));
        store.admit(7, "{\"jobs\": []}").unwrap();
        assert!(store.contains(7));
        let verdicts = vec![Verdict {
            id: "a".to_string(),
            attempts: 1,
            outcome: VerdictOutcome::Done {
                payload: "{\"code\": 0, \"line\": \"ok\"}".to_string(),
            },
        }];
        store.write_journal(7, &verdicts).unwrap();
        store.admit(9, "{\"jobs\": [1]}").unwrap();
        store.mark_cancelled(9).unwrap();

        // A fresh handle (the restarted daemon) sees everything.
        let (found, warnings) = Store::open(&root).unwrap().scan().unwrap();
        assert!(warnings.is_empty(), "{warnings:?}");
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].digest, 7);
        assert_eq!(found[0].verdicts, verdicts);
        assert!(!found[0].cancelled);
        assert_eq!(found[1].digest, 9);
        assert!(found[1].verdicts.is_empty());
        assert!(found[1].cancelled);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_journals_are_skipped_with_a_warning() {
        let root = tempdir("corrupt");
        let store = Store::open(&root).unwrap();
        store.admit(3, "{\"jobs\": []}").unwrap();
        std::fs::write(store.journal_path(3), "not json").unwrap();
        let (found, warnings) = store.scan().unwrap();
        assert!(found.is_empty());
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("0000000000000003"), "{warnings:?}");
        let _ = std::fs::remove_dir_all(&root);
    }
}
