//! End-to-end daemon tests over a real unix socket: submit, watch,
//! results, content-addressed resubmit, restart-resume, and the
//! malformed-request contract.
//!
//! The pool's worker binary is deliberately unspawnable, so every job
//! runs through the daemon's in-process fallback — these tests cover
//! the daemon/store/protocol machinery; real multi-process campaigns
//! are exercised by the CLI's own test suite and `daemon_smoke.sh`.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

use chess_bench::Json;
use chess_core::procpool::PoolConfig;
use chess_core::{SearchOutcome, SearchReport, SearchStats};
use chess_server::daemon::{run_daemon, DaemonConfig};
use chess_server::{expect_ok, Client, JobResult, Listen, Request};

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("chess-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn accept_all(_: &Json) -> Result<(), String> {
    Ok(())
}

/// A deterministic stand-in for the worker: Complete reports whose
/// execution counts encode the shard index, so the merged numbers are
/// checkable.
fn fake_runner(payload: &str) -> Result<String, String> {
    let json = Json::parse(payload).map_err(|e| e.to_string())?;
    let executions = match json.get("shard_index").and_then(Json::as_u64) {
        Some(index) => 10 + index,
        None => 5,
    };
    let report = SearchReport {
        outcome: SearchOutcome::Complete,
        stats: SearchStats {
            executions,
            ..Default::default()
        },
    };
    Ok(JobResult {
        code: report.outcome.exit_code(),
        line: report.deterministic_line(),
        report: Some(report),
    }
    .to_payload())
}

fn start_daemon(listen: &Listen, store: &Path) -> std::thread::JoinHandle<()> {
    let config = DaemonConfig {
        listen: listen.clone(),
        store_dir: store.to_path_buf(),
        pool: PoolConfig {
            workers: 2,
            heartbeat_timeout: Duration::from_millis(200),
            max_attempts: 2,
            ..PoolConfig::default()
        },
        worker_program: PathBuf::from("/nonexistent/fair-chess-worker"),
        worker_args: Vec::new(),
        validator: accept_all,
        fallback: Some(fake_runner),
    };
    std::thread::spawn(move || run_daemon(config).expect("daemon failed"))
}

fn connect_with_retry(listen: &Listen) -> Client {
    for _ in 0..200 {
        if let Ok(client) = Client::connect(listen) {
            return client;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("daemon never came up on {listen}");
}

#[test]
fn daemon_runs_shards_streams_caches_and_resumes() {
    let store = tempdir("e2e");
    let sock = Listen::Unix(store.join("daemon.sock"));
    let daemon = start_daemon(&sock, &store);
    let mut client = connect_with_retry(&sock);

    // Submit: one plain job, one 3-way sharded job (4 pool jobs).
    let manifest = Json::parse(
        r#"{"jobs": [
            {"id": "solo", "workload": "counter"},
            {"id": "wide", "workload": "counter", "shards": 3}
        ]}"#,
    )
    .unwrap();
    let ack = expect_ok(
        client
            .request(&Request::Submit {
                manifest: manifest.clone(),
            })
            .unwrap(),
    )
    .unwrap();
    assert_eq!(ack.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(ack.get("jobs").and_then(Json::as_u64), Some(4));
    let digest =
        chess_server::parse_digest(ack.get("campaign").and_then(Json::as_str).unwrap()).unwrap();

    // Watch: the stream replays every verdict and ends with done.
    expect_ok(
        client
            .request(&Request::Watch { campaign: digest })
            .unwrap(),
    )
    .unwrap();
    let (mut verdicts, mut statuses, mut done_code) = (Vec::new(), 0usize, None);
    while let Some(ev) = client.read_event().unwrap() {
        match ev.get("event").and_then(Json::as_str) {
            Some("verdict") => {
                verdicts.push(ev.get("id").and_then(Json::as_str).unwrap().to_string());
            }
            Some("status") => statuses += 1,
            Some("done") => {
                done_code = ev.get("code").and_then(Json::as_u64);
                break;
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    verdicts.sort();
    assert_eq!(verdicts, ["solo", "wide#0", "wide#1", "wide#2"]);
    assert!(statuses >= 1, "watch must interleave status events");
    assert_eq!(done_code, Some(0));

    // Results: manifest order, shard reports merged (10 + 11 + 12).
    let results = expect_ok(
        client
            .request(&Request::Results { campaign: digest })
            .unwrap(),
    )
    .unwrap();
    let report = results
        .get("report")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    let lines: Vec<&str> = report.lines().collect();
    assert!(
        lines[0].starts_with("solo: ") && lines[0].contains("5 executions"),
        "{report}"
    );
    assert!(
        lines[1].starts_with("wide: ") && lines[1].contains("33 executions"),
        "{report}"
    );
    assert_eq!(lines[2], "campaign: 2 of 2 jobs done, 0 quarantined");
    assert_eq!(results.get("code").and_then(Json::as_u64), Some(0));

    // Content-addressed resubmit: cached, no re-execution.
    let again = expect_ok(client.request(&Request::Submit { manifest }).unwrap()).unwrap();
    assert_eq!(again.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(again.get("state").and_then(Json::as_str), Some("done"));
    assert_eq!(again.get("code").and_then(Json::as_u64), Some(0));

    // Cancelling a finished campaign is a no-op that reports its state.
    let cancel = expect_ok(
        client
            .request(&Request::Cancel { campaign: digest })
            .unwrap(),
    )
    .unwrap();
    assert_eq!(cancel.get("state").and_then(Json::as_str), Some("done"));

    // Unknown campaigns get structured errors.
    let err = expect_ok(client.request(&Request::Results { campaign: 1 }).unwrap());
    assert!(err.unwrap_err().contains("unknown campaign"));

    // Shut down, then restart on the same store: the report re-renders
    // byte-for-byte from the journal alone.
    expect_ok(client.request(&Request::Shutdown).unwrap()).unwrap();
    daemon.join().unwrap();
    let daemon = start_daemon(&sock, &store);
    let mut client = connect_with_retry(&sock);
    let reloaded = expect_ok(
        client
            .request(&Request::Results { campaign: digest })
            .unwrap(),
    )
    .unwrap();
    assert_eq!(
        reloaded.get("report").and_then(Json::as_str),
        Some(report.as_str()),
        "restarted daemon must reprint the identical report"
    );
    expect_ok(client.request(&Request::Shutdown).unwrap()).unwrap();
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn malformed_requests_get_structured_errors_not_hangups() {
    let store = tempdir("garbage");
    let sock = Listen::Unix(store.join("daemon.sock"));
    let daemon = start_daemon(&sock, &store);
    let _probe = connect_with_retry(&sock);

    // Raw connection: garbage lines, wrong versions, unknown ops — the
    // daemon must answer each with ok:false and keep the line open.
    let mut conn = sock.connect().unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut exchange = |line: &str| -> Json {
        conn.write_all(line.as_bytes()).unwrap();
        conn.write_all(b"\n").unwrap();
        conn.flush().unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        Json::parse(response.trim_end()).unwrap()
    };
    for bad in [
        "!!chaos garbage!!",
        r#"{"op": "status"}"#,
        r#"{"v": 99, "op": "status"}"#,
        r#"{"v": 1, "op": "explode"}"#,
        r#"{"v": 1, "op": "submit", "manifest": {"jobs": [{"id": "a b"}]}}"#,
        r#"{"v": 1, "op": "submit", "manifest": {"jobs": [{"id": "x", "shards": 2, "strategy": "cb:2"}]}}"#,
    ] {
        let response = exchange(bad);
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "{bad} should earn a structured error, got {}",
            response.to_string_pretty()
        );
        assert!(response.get("error").is_some());
    }
    // The same connection still serves real requests afterwards.
    let response = exchange(r#"{"v": 1, "op": "status"}"#);
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));

    let mut client = connect_with_retry(&sock);
    expect_ok(client.request(&Request::Shutdown).unwrap()).unwrap();
    daemon.join().unwrap();
    let _ = std::fs::remove_dir_all(&store);
}
