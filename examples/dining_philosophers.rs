//! The paper's Figure 1: dining philosophers with try-locks, whose
//! retry loops livelock. Demonstrates the headline capability of fair
//! stateless model checking — finding liveness bugs in nonterminating
//! programs — plus the fair-terminating variant that checks clean.
//!
//! ```sh
//! cargo run --release -p chess-examples --bin dining_philosophers
//! ```

use chess_core::strategy::Dfs;
use chess_core::{Config, Explorer, SearchOutcome};
use chess_state::{StateGraph, StatefulLimits};
use chess_workloads::philosophers::{figure1_polite, philosophers, PhilosophersConfig};

fn main() {
    println!("== Figure 1: two philosophers with try-locks ==\n");
    println!("Phil1: while(true) {{ Acquire(fork1); if TryAcquire(fork2) break;");
    println!("                     Release(fork1); }} // then eat, release both");
    println!("Phil2: same with the forks swapped.\n");

    // Ground truth first: the Streett-condition reference search proves a
    // fair cycle (livelock) exists in the finite state space.
    let graph = StateGraph::build(&figure1_polite(), StatefulLimits::default())
        .expect("figure 1's state space is tiny");
    println!(
        "stateful reference: {} states, fair cycle exists: {}",
        graph.state_count(),
        graph.find_fair_scc().is_some()
    );

    // Now the stateless fair search finds it without storing any states.
    let report = Explorer::new(figure1_polite, Dfs::new(), Config::fair()).run();
    match &report.outcome {
        SearchOutcome::Divergence(d) => {
            println!(
                "\nfair stateless search: {} (execution {}, {} executions total)",
                d.kind, d.execution, report.stats.executions
            );
            println!(
                "\nschedule reaching the livelock ({} steps):",
                d.schedule.len()
            );
            let tail: Vec<String> = d.schedule.iter().map(|x| x.to_string()).collect();
            println!("  {}", tail.join(" "));
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    println!("\n== The fair-terminating fix: ordered forks ==");
    let fixed = PhilosophersConfig::table2(2);
    let report = Explorer::new(move || philosophers(fixed), Dfs::new(), Config::fair()).run();
    println!(
        "outcome: {:?} after {} executions, {} nonterminating",
        report.outcome, report.stats.executions, report.stats.nonterminating
    );
}
