//! Reproduces Figure 4 of the paper: an emulation of Algorithm 1 on the
//! spin loop of Figure 3, printing the evolution of the priority
//! relation `P` and the window sets `S(u)`, `D(u)`, `E(u)` as the
//! scheduler keeps choosing the spinning thread `u`.
//!
//! After `u`'s *second* yield the edge `(u, t)` appears in `P` and the
//! scheduler is forced to run `t`, which lets `u` exit its loop.
//!
//! ```sh
//! cargo run --release -p chess-examples --bin fairness_trace
//! ```

use chess_core::{FairScheduler, TransitionSystem};
use chess_kernel::{ThreadId, TidSet};
use chess_workloads::spinloop::figure3;

fn show(set: &TidSet) -> String {
    let names: Vec<&str> = set
        .iter()
        .map(|t| if t.index() == 0 { "t" } else { "u" })
        .collect();
    format!("{{{}}}", names.join(","))
}

fn main() {
    let mut sys = figure3();
    let mut fair = FairScheduler::new(sys.thread_count());
    let (_t, u) = (ThreadId::new(0), ThreadId::new(1));

    println!("Figure 4 emulation: scheduler keeps choosing thread u (the spinner).\n");
    let header = ["transition", "S(u)", "D(u)", "E(u)", "P", "schedulable"];
    println!(
        "{:28} {:10} {:10} {:10} {:14} {}",
        header[0], header[1], header[2], header[3], header[4], header[5]
    );

    let print_row =
        |label: &str,
         fair: &FairScheduler,
         sys: &chess_kernel::Kernel<chess_workloads::spinloop::SpinShared>| {
            let es = TransitionSystem::enabled_set(sys);
            let p = fair.priority_edges()[u.index()].clone();
            let p_str = if p.is_empty() {
                "{}".to_string()
            } else {
                format!("{{(u,{})}}", show(&p).trim_matches(['{', '}']))
            };
            println!(
                "{:28} {:10} {:10} {:10} {:14} {}",
                label,
                show(fair.window_scheduled(u)),
                show(fair.window_disabled(u)),
                show(fair.window_enabled(u)),
                p_str,
                show(&fair.schedulable(&es)),
            );
        };

    print_row("initial state (a,c)", &fair, &sys);

    // Keep scheduling u while the fair scheduler allows it.
    let mut step = 0;
    loop {
        let es = TransitionSystem::enabled_set(&sys);
        let schedulable = fair.schedulable(&es);
        if !schedulable.contains(u) {
            println!("\nAfter u's second yield, P = {{(u,t)}} forces the scheduler to run t:");
            let kind = TransitionSystem::step(&mut sys, ThreadId::new(0), 0);
            let es_after = TransitionSystem::enabled_set(&sys);
            fair.on_scheduled(ThreadId::new(0), &es, &es_after, kind.is_yield());
            print_row("t: x := 1", &fair, &sys);
            break;
        }
        let label = format!("u: {}", sys.describe_op(u));
        let kind = TransitionSystem::step(&mut sys, u, 0);
        let es_after = TransitionSystem::enabled_set(&sys);
        fair.on_scheduled(u, &es, &es_after, kind.is_yield());
        print_row(&label, &fair, &sys);
        step += 1;
        assert!(step < 20, "the fair scheduler must cut the spin off");
    }

    // u can now observe x == 1 and exit.
    while TransitionSystem::status(&sys).is_running() {
        let es = TransitionSystem::enabled_set(&sys);
        let pick = fair.schedulable(&es).first().unwrap();
        let kind = TransitionSystem::step(&mut sys, pick, 0);
        let es_after = TransitionSystem::enabled_set(&sys);
        fair.on_scheduled(pick, &es, &es_after, kind.is_yield());
    }
    println!("\nprogram terminated: x = {}", sys.shared().x);
}
