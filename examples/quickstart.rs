//! Quickstart: write a small concurrent program as kernel guest threads,
//! check it with the fair stateless model checker, and read the
//! counterexample.
//!
//! ```sh
//! cargo run --release -p chess-examples --bin quickstart
//! ```

use chess_core::strategy::Dfs;
use chess_core::{Config, Explorer, SearchOutcome};
use chess_workloads::simple::{locked_counter, racy_counter};

fn main() {
    // Two threads perform `count += 1` as separate load and store
    // transitions — the canonical lost-update race.
    println!("== Checking the racy counter (2 threads, unprotected) ==");
    let report = Explorer::new(|| racy_counter(2), Dfs::new(), Config::fair()).run();
    match &report.outcome {
        SearchOutcome::SafetyViolation(cex) => {
            println!(
                "bug found after {} executions ({} transitions):\n",
                report.stats.executions, report.stats.transitions
            );
            // Counterexamples replay deterministically: render the exact
            // interleaving that loses an update.
            print!("{}", cex.render(|| racy_counter(2)));
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    println!("\n== Checking the fixed counter (mutex-protected) ==");
    let report = Explorer::new(|| locked_counter(2), Dfs::new(), Config::fair()).run();
    println!(
        "{} — every one of the {} interleavings satisfies the assertion",
        match report.outcome {
            SearchOutcome::Complete => "verified",
            _ => "UNEXPECTED",
        },
        report.stats.executions
    );
}
