//! The classic ABA bug in a lock-free Treiber stack — the kind of
//! "low-level synchronization library employing nonblocking algorithms"
//! CHESS was pointed at (Section 4.1), where manual test harnesses are
//! hopeless and the model checker shines.
//!
//! ```sh
//! cargo run --release -p chess-examples --bin treiber_aba
//! ```

use chess_core::strategy::Dfs;
use chess_core::{Config, Explorer, SearchOutcome};
use chess_state::{StateGraph, StatefulLimits};
use chess_workloads::treiber::{treiber_stack, TreiberConfig};

fn main() {
    println!("== Treiber stack, unversioned head word (ABA-vulnerable) ==\n");
    println!("pop():  h = head; n = next[h]; CAS(head, h, n)");
    println!("        // BUG: between the reads and the CAS, another thread");
    println!("        // can pop h, pop n, and push h back — the CAS then");
    println!("        // succeeds and installs the freed node n as head.\n");

    let factory = || treiber_stack(TreiberConfig::aba());
    let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
    match &report.outcome {
        SearchOutcome::SafetyViolation(cex) => {
            println!(
                "ABA found in {} executions ({:.1?}):\n",
                report.stats.executions, report.stats.wall
            );
            print!("{}", cex.render(factory));
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // Cross-check with the stateful reference: the corruption is really
    // reachable, and the versioned fix really removes it.
    let buggy = StateGraph::build(&factory(), StatefulLimits::default()).unwrap();
    let fixed_factory = || treiber_stack(TreiberConfig::correct());
    let fixed = StateGraph::build(&fixed_factory(), StatefulLimits::default()).unwrap();
    println!(
        "\nstateful reference: unversioned has {} violating state(s) of {}; \
         versioned has {} of {}",
        buggy.violation_states().len(),
        buggy.state_count(),
        fixed.violation_states().len(),
        fixed.state_count(),
    );

    println!("\n== Versioned head word (version << 32 | node) ==");
    let report = Explorer::new(fixed_factory, Dfs::new(), Config::fair()).run();
    println!(
        "outcome: {:?} — {} executions, every interleaving clean",
        report.outcome, report.stats.executions
    );
}
