//! "Booting the operating system under the model checker": drives the
//! 14-thread miniature OS boot/shutdown scenario (the Singularity
//! stand-in) through many schedules under the fair scheduler — the
//! experiment that was impossible before fairness, because the boot
//! sequence is full of spin-until-ready loops that defeat depth-bounded
//! stateless search.
//!
//! ```sh
//! cargo run --release -p chess-examples --bin miniboot
//! ```

use chess_core::strategy::{ContextBounded, RandomWalk};
use chess_core::{Config, Explorer, TransitionSystem};
use chess_workloads::miniboot::{miniboot, BootConfig};

fn main() {
    // One instrumented run to show the scale (Table 1's metrics).
    let mut k = miniboot(BootConfig::full());
    while TransitionSystem::status(&k).is_running() {
        let t = k.thread_ids().find(|&t| k.enabled(t)).unwrap();
        k.step(t, 0);
    }
    println!("== One boot+shutdown execution ==");
    println!("threads:            {}", k.thread_count());
    println!("sync operations:    {}", k.stats().sync_ops);
    println!("total transitions:  {}", k.stats().steps);
    println!("services ready:     {}", k.shared().ready_count);

    println!("\n== 500 random fair schedules ==");
    let factory = || miniboot(BootConfig::full());
    let config = Config::fair()
        .with_detect_cycles(false)
        .with_max_executions(500);
    let report = Explorer::new(factory, RandomWalk::new(1), config).run();
    println!(
        "outcome: {:?} — {} executions, {} transitions, deepest {} steps, {:.1?}",
        report.outcome,
        report.stats.executions,
        report.stats.transitions,
        report.stats.max_depth,
        report.stats.wall
    );

    println!("\n== Systematic fair search, preemption bound 1 (budgeted) ==");
    let config = Config::fair()
        .with_detect_cycles(false)
        .with_max_executions(2_000);
    let report = Explorer::new(factory, ContextBounded::new(1), config).run();
    println!(
        "outcome: {:?} — {} executions, {} transitions, {:.1?}",
        report.outcome, report.stats.executions, report.stats.transitions, report.stats.wall
    );
}
