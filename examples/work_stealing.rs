//! Finding a seeded bug in the Cilk-style work-stealing queue with
//! context-bounded fair search (the Table 3 methodology), then checking
//! the corrected implementation.
//!
//! ```sh
//! cargo run --release -p chess-examples --bin work_stealing
//! ```

use chess_core::strategy::ContextBounded;
use chess_core::{Config, Explorer, SearchOutcome};
use chess_workloads::wsq::{wsq, WsqBug, WsqConfig};

fn main() {
    println!("== Work-stealing queue (THE protocol), owner + 2 thieves ==\n");

    for (name, bug) in [
        ("unlocked conflict path in pop", WsqBug::UnlockedConflictPop),
        ("steal without the lock", WsqBug::UnsynchronizedSteal),
        ("lost tail restore on conflict", WsqBug::LostTailRestore),
    ] {
        let factory = move || wsq(WsqConfig::with_bug(bug));
        let config = Config::fair().with_detect_cycles(false);
        let report = Explorer::new(factory, ContextBounded::new(2), config).run();
        match &report.outcome {
            SearchOutcome::SafetyViolation(cex) => {
                println!(
                    "bug [{name}]: found in {} executions ({:.1?})",
                    report.stats.executions, report.stats.wall
                );
                println!("  violation: {}", cex.message);
                println!("  schedule length: {} transitions\n", cex.schedule.len());
            }
            other => println!("bug [{name}]: NOT FOUND ({other:?})\n"),
        }
    }

    println!("== Correct implementation, same search ==");
    let factory = || wsq(WsqConfig::table2(2));
    let config = Config::fair()
        .with_detect_cycles(false)
        .with_max_executions(50_000);
    let report = Explorer::new(factory, ContextBounded::new(2), config).run();
    println!(
        "outcome: {:?} — {} executions, {} transitions, no violations",
        report.outcome, report.stats.executions, report.stats.transitions
    );
}
