//! §4.3.2: the livelock in the Promise library (Figure 8). The waiter
//! caches the shared state word and spins on the **stale local copy** —
//! with a polite `Sleep(1)` per iteration, so the infinite execution is
//! fair and satisfies the good-samaritan property: a true livelock,
//! invisible to the unfair baseline and to stress testing.
//!
//! ```sh
//! cargo run --release -p chess-examples --bin promise_livelock
//! ```

use chess_core::strategy::Dfs;
use chess_core::{Config, DivergenceKind, Explorer, SearchOutcome};
use chess_workloads::promise::{figure8, promises, PromiseConfig};

fn main() {
    println!("== Promise library with the Figure 8 stale-read spin ==\n");
    println!("int x_temp = InterlockedRead(x);");
    println!("if (common case 1) break;");
    println!("while (x_temp != 1) {{ Sleep(1); }}   // BUG: never re-reads x\n");

    let report = Explorer::new(figure8, Dfs::new(), Config::fair()).run();
    match &report.outcome {
        SearchOutcome::Divergence(d) => {
            match d.kind {
                DivergenceKind::FairCycle {
                    cycle_start,
                    cycle_len,
                } => println!(
                    "livelock: the execution revisits the same (program, scheduler) state — \
                     a fair cycle of {cycle_len} transition(s) starting at step {cycle_start}."
                ),
                ref k => println!("divergence: {k}"),
            }
            println!(
                "found in execution {} after {} total executions ({:.1?})",
                d.execution, report.stats.executions, report.stats.wall
            );
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    println!("\nWhy stress testing misses it: if the producers win the race, the");
    println!("fast path succeeds and the buggy spin never runs. Only the rare");
    println!("interleaving where the consumer reads x *before* the producer's");
    println!("write enters the spin — and the fair scheduler drives straight");
    println!("into it while pruning the unfair spins that waste the baseline's time.");

    println!("\n== Corrected waiter: re-reads shared state each iteration ==");
    let factory = || promises(PromiseConfig::correct());
    let config = Config::fair().with_max_executions(5_000);
    let report = Explorer::new(factory, Dfs::new(), config).run();
    println!(
        "outcome: {:?} — {} executions, 0 divergences",
        report.outcome, report.stats.executions
    );
}
