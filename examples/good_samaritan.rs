//! §4.3.1: the worker-pool shutdown bug — a violation of the
//! good-samaritan property. During shutdown there is a window where the
//! group stop flag is set but a worker's own flag is not; in that window
//! the worker spins through `Idle` without ever yielding, starving the
//! very thread that would stop it.
//!
//! ```sh
//! cargo run --release -p chess-examples --bin good_samaritan
//! ```

use chess_core::strategy::Dfs;
use chess_core::{Config, Explorer, SearchOutcome};
use chess_workloads::workerpool::{figure7, worker_pool, PoolConfig};

fn main() {
    println!("== Worker pool with the Figure 7 shutdown bug ==\n");
    let report = Explorer::new(figure7, Dfs::new(), Config::fair()).run();
    match &report.outcome {
        SearchOutcome::Divergence(d) => {
            println!(
                "good-samaritan violation detected (execution {}):\n  {}",
                d.execution, d.kind
            );
            println!(
                "\nthe offending execution's last 12 scheduling decisions:\n  ... {}",
                d.schedule
                    .iter()
                    .rev()
                    .take(12)
                    .rev()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            println!("\n(the same thread spins without a single yield)");
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    println!("\n== Corrected library: Idle yields on the shutdown path ==");
    let factory = || worker_pool(PoolConfig::correct());
    let config = Config::fair().with_max_executions(5_000);
    let report = Explorer::new(factory, Dfs::new(), config).run();
    println!(
        "outcome: {:?} — {} executions, 0 divergences",
        report.outcome, report.stats.executions
    );
}
