//! Offline drop-in replacement for the subset of `proptest 1.x` used by
//! this workspace: the `proptest!` macro, `prop_assert*`, `prop_oneof!`,
//! `Just`, `any`, `.prop_map`, and `prop::collection::{vec, btree_set}`.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This implementation keeps the property-test
//! *sources* untouched while providing a deterministic, seedable case
//! generator. Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its inputs verbatim.
//! - **Deterministic seeding.** Cases derive from a fixed seed mixed
//!   with the test's name, so failures reproduce across runs. Set
//!   `PROPTEST_CASES` to change the per-test case count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// The deterministic generator backing every sampled value (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded from the owning test's name, so every test gets
    /// an independent but reproducible stream.
    pub fn deterministic(test_name: &str) -> Self {
        // FNV-1a over the name, folded into a fixed golden seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h ^ 0x9E37_79B9_7F4A_7C15)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value below `n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

// ---------------------------------------------------------------------
// Config and errors
// ---------------------------------------------------------------------

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed property case; `prop_assert*` early-returns one.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }

    /// Alias used by real proptest's API surface.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (proptest's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Tuples of strategies are strategies for tuples of values, mirroring
/// real proptest's tuple support (used for compound generated steps,
/// e.g. `vec((any::<u64>(), 0u32..8, any::<bool>()), ..)`).
macro_rules! impl_tuple_strategy {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0: 0);
impl_tuple_strategy!(S0: 0, S1: 1);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4);
impl_tuple_strategy!(S0: 0, S1: 1, S2: 2, S3: 3, S4: 4, S5: 5);

/// A strategy producing exactly one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// One weighted generator arm of a [`Union`].
type Arm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// The weighted union built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, Arm<T>)>,
    total: u32,
}

impl<T> Union<T> {
    /// An empty union; populate with [`Union::arm`].
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union {
            arms: Vec::new(),
            total: 0,
        }
    }

    /// Adds a weighted arm (builder-style, used by the macro expansion).
    pub fn arm<S>(mut self, weight: u32, strategy: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        assert!(weight > 0, "prop_oneof! weights must be positive");
        self.arms
            .push((weight, Box::new(move |rng| strategy.sample(rng))));
        self.total += weight;
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let mut roll = rng.below(self.total as u64) as u32;
        for (weight, f) in &self.arms {
            if roll < *weight {
                return f(rng);
            }
            roll -= weight;
        }
        unreachable!("weighted pick within total")
    }
}

// ---------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Builds that strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain strategy for primitive types.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(PhantomData)
    }
}

// ---------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with a size drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `Vec` of `elem`-generated values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with a target size drawn from a range.
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` of `elem`-generated values; duplicates collapse, so
    /// the realized size can fall below the drawn target (real proptest
    /// retries; for generator purposes the smaller set is just as good).
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The `prop` namespace (`prop::collection::...`), as re-exported by the
/// real prelude.
pub mod prop {
    pub use crate::collection;
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` that samples the strategies `config.cases`
/// times and runs the body, reporting the sampled inputs on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let inputs = ::std::format!(
                    ::std::concat!($(::std::stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    ::std::panic!(
                        "proptest {} failed at case {} with inputs [{}]: {}",
                        ::std::stringify!($name),
                        case,
                        inputs,
                        e
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, early-returning a
/// [`TestCaseError`] so the harness can report the sampled inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::std::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!(
            $left,
            $right,
            "assertion failed: {} == {}",
            ::std::stringify!($left),
            ::std::stringify!($right)
        )
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if !(*left_val == *right_val) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!(
                            "{} (left: {:?}, right: {:?})",
                            ::std::format!($($fmt)+),
                            left_val,
                            right_val
                        ),
                    ));
                }
            }
        }
    };
}

/// `prop_assert!` for inequality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_ne!(
            $left,
            $right,
            "assertion failed: {} != {}",
            ::std::stringify!($left),
            ::std::stringify!($right)
        )
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left_val, right_val) => {
                if *left_val == *right_val {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!(
                            "{} (both: {:?})",
                            ::std::format!($($fmt)+),
                            left_val
                        ),
                    ));
                }
            }
        }
    };
}

/// Weighted (or unweighted) choice among strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new()$(.arm($weight as u32, $strat))+
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new()$(.arm(1u32, $strat))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_in_bounds() {
        let mut rng = TestRng::deterministic("ranges_sample_in_bounds");
        for _ in 0..1_000 {
            let v = Strategy::sample(&(3u8..9), &mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn union_respects_arms() {
        let mut rng = TestRng::deterministic("union_respects_arms");
        let s = prop_oneof![4 => Just(1u8), 1 => Just(2u8)];
        let mut seen = [0u32; 3];
        for _ in 0..500 {
            seen[Strategy::sample(&s, &mut rng) as usize] += 1;
        }
        assert_eq!(seen[0], 0);
        assert!(seen[1] > seen[2], "weights ignored: {seen:?}");
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::deterministic("vec_strategy_respects_size");
        for _ in 0..200 {
            let v = Strategy::sample(&prop::collection::vec(0usize..5, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro path itself: sampled args are visible in the body
        /// and `prop_assert*` early-returns work.
        #[test]
        fn macro_roundtrip(x in 0u64..100, ys in prop::collection::vec(0u8..4, 0..10)) {
            prop_assert!(x < 100);
            for y in &ys {
                prop_assert!(*y < 4, "element {} out of range", y);
            }
            prop_assert_eq!(ys.len(), ys.len());
            prop_assert_ne!(x, x + 1);
        }
    }
}
