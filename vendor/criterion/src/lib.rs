//! Offline drop-in replacement for the subset of `criterion 0.5` used by
//! this workspace's `[[bench]]` targets: `Criterion`, benchmark groups,
//! `bench_function` / `bench_with_input`, `Bencher::{iter, iter_batched}`,
//! `BenchmarkId`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This shim keeps every bench source compiling and
//! produces honest (if statistically unsophisticated) wall-clock numbers:
//! each routine is warmed up, then timed over enough iterations to fill a
//! small measurement window, and the mean ns/iter is printed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup cost; the shim times routines
/// individually, so the variants only differ cosmetically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// A benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter value alone (the group provides a name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
    window: Duration,
}

impl Bencher {
    fn new(window: Duration) -> Self {
        Bencher {
            total: Duration::ZERO,
            iters: 0,
            window,
        }
    }

    /// Times `routine` repeatedly until the measurement window fills.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup: one untimed call (also triggers lazy init).
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.window {
            black_box(routine());
            iters += 1;
        }
        self.total = start.elapsed();
        self.iters = iters.max(1);
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let window_start = Instant::now();
        while window_start.elapsed() < self.window {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.total = measured;
        self.iters = iters.max(1);
    }

    fn report(&self, id: &str) {
        let ns = self.total.as_nanos() as f64 / self.iters as f64;
        println!("bench: {id:<50} {ns:>14.1} ns/iter ({} iters)", self.iters);
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("BENCH_WINDOW_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(200u64);
        Criterion {
            window: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.window);
        f(&mut b);
        b.report(id);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sample-size hint; the shim sizes by wall-clock window instead.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement-time hint, honored as the per-benchmark window.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.criterion.window = window;
        self
    }

    /// Runs a benchmark under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.window);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs a parameterized benchmark under `group_name/id`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.criterion.window);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (report output is already flushed per-bench).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for one or more `criterion_group!`s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion {
            window: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn batched_excludes_setup() {
        let mut c = Criterion {
            window: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter_batched(|| vec![0u8; n as usize], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
