//! Offline drop-in replacement for the subset of `rand 0.8` this
//! workspace uses: `SmallRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::gen_range` over half-open integer ranges.
//!
//! The build environment has no network access and no vendored registry,
//! so the real `rand` crate cannot be fetched. The model checker only
//! needs a deterministic, seedable, reasonably-distributed generator —
//! statistical quality beyond that is irrelevant — so this crate
//! implements xoshiro256++ (the same algorithm family `SmallRng` uses on
//! 64-bit targets) behind the same trait names. Seeding mirrors
//! `rand_core`: `seed_from_u64` expands the seed with SplitMix64.
//!
//! Determinism contract: for a fixed seed, the decision stream is stable
//! across runs and platforms. It is **not** bit-compatible with the real
//! `rand` crate; seeds recorded by this workspace replay only against
//! this implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with
    /// SplitMix64 exactly like `rand_core::SeedableRng::seed_from_u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// A uniform sample from a half-open integer range. Panics when the
    /// range is empty, like the real `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniformly random boolean with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 random mantissa bits give a uniform float in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce a uniform sample (the `gen_range` operand).
pub trait SampleRange<T> {
    /// Draws one sample; panics on an empty range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo reduction: the bias is < span/2^64, invisible to
                // a schedule explorer; determinism is what matters here.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named RNG types, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::small::SmallRng;
}

mod small {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl SmallRng {
        /// Exposes the raw xoshiro256++ state so a checkpointed search can
        /// persist its generator and resume the identical decision stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`SmallRng::state`]. The stream continues exactly where the
        /// captured generator left off.
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            self.s = [s0, s1, s2, s3.rotate_left(45)];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        for _ in 0..10_000 {
            let v = r.gen_range(-5i32..6);
            assert!((-5..6).contains(&v));
        }
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = SmallRng::seed_from_u64(13);
        for _ in 0..5 {
            a.gen_range(0u64..1000);
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn all_residues_reachable() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
