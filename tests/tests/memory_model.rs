//! Integration tests of the relaxed-memory subsystem: store-buffer
//! invariants (property-based), golden trace annotations for buffered
//! stores, flushes and fences, cross-model replay of a relaxed
//! counterexample, and the fenced-Dekker differential cross-check.

use chess_core::fuzz::{generate_atomic_program, AtomicProgram};
use chess_core::strategy::{Dfs, FixedSchedule};
use chess_core::{Config, Explorer, SearchOutcome};
use chess_kernel::{
    AtomicId, Effects, GuestThread, Kernel, MemoryModel, OpDesc, OpResult, StateWriter,
    StoreBuffer, ThreadId,
};
use chess_state::{differential_check, OracleLimits, SystemOutcome};
use chess_workloads::litmus;
use proptest::prelude::*;

/// Mints `n` atomic ids the only way external code can: from a kernel.
fn atomic_ids(n: usize) -> Vec<AtomicId> {
    let mut k: Kernel<()> = Kernel::new(());
    (0..n).map(|_| k.add_atomic(0)).collect()
}

/// A deterministic scheduler for driving a kernel by hand: repeatedly
/// pick an enabled lane (and a branch choice) from a seed, for up to
/// `max_steps` transitions. The callback sees the kernel *before* each
/// step together with the chosen lane.
fn drive<S: chess_kernel::Capture>(
    k: &mut Kernel<S>,
    seed: u64,
    max_steps: usize,
    mut before_step: impl FnMut(&Kernel<S>, ThreadId),
) {
    let mut state = seed.wrapping_mul(2) | 1;
    let mut rand = |bound: usize| {
        // SplitMix64 step — plenty for schedule diversity.
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize % bound.max(1)
    };
    for _ in 0..max_steps {
        let enabled: Vec<ThreadId> = k.thread_ids().filter(|&t| k.enabled(t)).collect();
        if enabled.is_empty() {
            break;
        }
        let t = enabled[rand(enabled.len())];
        let choice = rand(k.branching(t)) as u32;
        before_step(k, t);
        k.step(t, choice);
    }
}

proptest! {
    /// Per-location FIFO order: draining a buffer one location at a time
    /// yields exactly that location's values in push order, and draining
    /// oldest-first yields the global push order.
    #[test]
    fn store_buffer_preserves_per_location_fifo(
        pushes in proptest::collection::vec((0usize..3, 0u64..1000), 0..24)
    ) {
        let ids = atomic_ids(3);
        let mut buf = StoreBuffer::new();
        for &(loc, v) in &pushes {
            buf.push(ids[loc], v);
        }
        prop_assert_eq!(buf.len(), pushes.len());

        // lookup forwards the youngest store per location.
        for (loc, id) in ids.iter().enumerate() {
            let youngest = pushes.iter().rev().find(|&&(l, _)| l == loc).map(|&(_, v)| v);
            prop_assert_eq!(buf.lookup(*id), youngest);
        }

        // Global FIFO drain (the TSO flush order).
        let mut fifo = buf.clone();
        let mut drained = Vec::new();
        while let Some((id, v)) = fifo.pop_oldest() {
            drained.push((id, v));
        }
        let expect: Vec<_> = pushes.iter().map(|&(l, v)| (ids[l], v)).collect();
        prop_assert_eq!(drained, expect);

        // Per-location drain (a PSO flush order).
        for (loc, id) in ids.iter().enumerate() {
            let mut per = buf.clone();
            let mut got = Vec::new();
            while let Some(v) = per.pop_location(*id) {
                got.push(v);
            }
            let expect: Vec<_> = pushes
                .iter()
                .filter(|&&(l, _)| l == loc)
                .map(|&(_, v)| v)
                .collect();
            prop_assert_eq!(got, expect);
        }
    }

    /// Under SC nothing ever buffers: no flusher lanes exist,
    /// `store_buffer` is `None` for every lane, and the lane count equals
    /// the guest count.
    #[test]
    fn sc_never_buffers(seed in 0u64..64, schedule_seed in 0u64..8) {
        let cfg = chess_core::FuzzConfig {
            max_threads: 3,
            max_ops: 3,
            ..chess_core::FuzzConfig::default().with_seed(seed)
        };
        let prog = generate_atomic_program(&cfg);
        let guests = prog.scripts().len();
        let mut k = prog.instantiate(MemoryModel::Sc);
        prop_assert_eq!(k.thread_count(), guests);
        drive(&mut k, schedule_seed, 200, |k, t| {
            assert!(!k.is_flush(t));
            assert!(k.store_buffer(t).is_none());
        });
    }

    /// A fence is enabled only once the issuing thread's buffer is empty,
    /// and a flusher lane is offered exactly while its buffer is
    /// non-empty (never for an empty buffer).
    #[test]
    fn fence_waits_and_empty_flush_never_offered(
        seed in 0u64..64,
        schedule_seed in 0u64..8,
        pso in 0u8..2,
    ) {
        let model = if pso == 1 { MemoryModel::Pso } else { MemoryModel::Tso };
        let cfg = chess_core::FuzzConfig {
            max_threads: 3,
            max_ops: 4,
            ..chess_core::FuzzConfig::default().with_seed(seed)
        };
        let prog = generate_atomic_program(&cfg);
        let mut k = prog.instantiate(model);
        drive(&mut k, schedule_seed, 400, |k, picked| {
            for t in k.thread_ids() {
                let buffer_empty = k.store_buffer(t).is_none_or(StoreBuffer::is_empty);
                if k.is_flush(t) {
                    // Offered iff there is something to drain.
                    assert_eq!(k.enabled(t), !buffer_empty);
                } else if matches!(k.next_op(t), OpDesc::Fence) && k.enabled(t) {
                    assert!(buffer_empty);
                }
            }
            // An enabled fence about to step has already drained.
            if matches!(k.next_op(picked), OpDesc::Fence) {
                assert!(k.store_buffer(picked).is_none_or(StoreBuffer::is_empty));
            }
        });
    }
}

/// A guest that stores, fences, then fails — forcing any TSO execution
/// to buffer, flush, and fence before the violation, so the rendered
/// trace must carry all three annotations.
#[derive(Clone)]
struct StoreFenceFail {
    cell: AtomicId,
    pc: usize,
}

impl GuestThread<()> for StoreFenceFail {
    fn next_op(&self, _: &()) -> OpDesc {
        match self.pc {
            0 => OpDesc::AtomicStore(self.cell, 7),
            1 => OpDesc::Fence,
            _ => OpDesc::Finished,
        }
    }

    fn on_op(&mut self, _: OpResult, _: &mut (), fx: &mut Effects<()>) {
        self.pc += 1;
        if self.pc == 2 {
            fx.fail("stop here so the trace renders");
        }
    }

    fn name(&self) -> String {
        "writer".into()
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_usize(self.pc);
    }

    fn box_clone(&self) -> Box<dyn GuestThread<()>> {
        Box::new(self.clone())
    }
}

/// Golden trace: buffered stores render `[buffer …]`, flusher steps
/// render as the owner's `:flush` lane with `[flush …]`, and fences
/// render `[fence]`.
#[test]
fn trace_annotations_for_buffer_flush_and_fence() {
    let factory = || {
        let mut k = Kernel::with_memory((), MemoryModel::Tso);
        let cell = k.add_atomic(0);
        k.spawn(StoreFenceFail { cell, pc: 0 });
        k
    };
    let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
    let SearchOutcome::SafetyViolation(cex) = report.outcome else {
        panic!("expected the seeded violation, got {:?}", report.outcome);
    };
    let trace = cex.render(factory);
    for needle in [
        "AtomicStore(atomic0, 7)",
        "[buffer atomic0]",
        "writer:flush",
        "Flush(t0)",
        "[flush atomic0]",
        "Fence",
        "[fence]",
    ] {
        assert!(trace.contains(needle), "missing {needle:?} in:\n{trace}");
    }
}

/// A TSO-found violation replays deterministically under TSO but does
/// not silently reproduce under SC: the schedule refers to flusher lanes
/// that do not exist there, and SC forbids the outcome anyway. (The CLI
/// additionally refuses such a replay up front via the corpus/journal
/// memory field.)
#[test]
fn tso_counterexample_does_not_replay_under_sc() {
    let report = Explorer::new(
        || litmus::store_buffering(MemoryModel::Tso),
        Dfs::new(),
        Config::fair().with_max_executions(100_000),
    )
    .run();
    let SearchOutcome::SafetyViolation(cex) = report.outcome else {
        panic!("sb must violate under tso");
    };

    // Same model: deterministic reproduction.
    let replayed = Explorer::new(
        || litmus::store_buffering(MemoryModel::Tso),
        FixedSchedule::new(cex.schedule.clone()),
        Config::fair(),
    )
    .run();
    assert!(
        matches!(replayed.outcome, SearchOutcome::SafetyViolation(_)),
        "tso replay must reproduce, got {:?}",
        replayed.outcome
    );

    // Different model: the relaxed outcome must not appear.
    let downgraded = Explorer::new(
        || litmus::store_buffering(MemoryModel::Sc),
        FixedSchedule::new(cex.schedule.clone()),
        Config::fair(),
    )
    .run();
    assert!(
        !matches!(downgraded.outcome, SearchOutcome::SafetyViolation(_)),
        "an sc replay of a tso schedule must not resurface the relaxed outcome, got {:?}",
        downgraded.outcome
    );
}

/// The fenced Dekker is clean under every model, cross-checked by the
/// full differential harness (stateless search vs stateful reference,
/// one oracle per theorem) rather than the plain explorer alone.
#[test]
fn fenced_dekker_is_clean_under_every_model_differentially() {
    for model in MemoryModel::ALL {
        let verdict = differential_check(|| litmus::dekker_fenced(model), &OracleLimits::default());
        assert!(
            matches!(verdict.outcome, SystemOutcome::Clean),
            "{model}: expected clean, got {:?}",
            verdict.outcome
        );
        assert!(
            verdict.discrepancies.is_empty(),
            "{model}: {:?}",
            verdict.discrepancies
        );
    }
}

/// The relaxed searches terminate: every buffered store must flush
/// before the kernel reports termination, so terminal states carry empty
/// buffers and capture identically across models when memory agrees.
#[test]
fn terminated_executions_have_drained_buffers() {
    let cfg = chess_core::FuzzConfig {
        max_threads: 3,
        max_ops: 3,
        ..chess_core::FuzzConfig::default().with_seed(0xfeed)
    };
    let prog: AtomicProgram = generate_atomic_program(&cfg);
    for model in [MemoryModel::Tso, MemoryModel::Pso] {
        let mut k = prog.instantiate(model);
        drive(&mut k, 3, 10_000, |_, _| {});
        for t in k.thread_ids() {
            assert!(
                k.store_buffer(t).is_none_or(StoreBuffer::is_empty),
                "{model}: lane {t} still buffered after quiescence"
            );
        }
    }
}
