//! Equivalence harness for the raw-speed pass on the execution core.
//!
//! The fast path (pooled kernel state via `Config::with_pooling` plus
//! incrementally-maintained capture fingerprints via
//! `Kernel::set_fingerprint_caching`) must be *observationally invisible*:
//! for every kernel workload, under every memory model where one applies,
//! a search on the fast path must produce
//!
//! * a byte-identical visited-state trace (depth, fingerprint, and full
//!   canonical state signature of every state occurrence, in order),
//! * identical `SearchStats` (wall-clock excluded) and `SearchOutcome`,
//! * an identical set of terminal-state fingerprints,
//!
//! compared with the reference path (factory-fresh kernels, full
//! recapture on every fingerprint). Any divergence is a soundness bug in
//! the optimizations, not a perf trade-off.

use std::collections::BTreeSet;

use chess_core::strategy::{Dfs, RandomWalk};
use chess_core::{Config, Explorer, Observer, SearchReport};
use chess_kernel::{Capture, Kernel, MemoryModel};
use chess_workloads::boundedbuffer::{bounded_buffer, BufferConfig};
use chess_workloads::bsp::{bsp, BspConfig};
use chess_workloads::channels::{fifo_pipeline, FifoConfig};
use chess_workloads::litmus::{
    dekker, dekker_fenced, iriw, load_buffering, message_passing, store_buffering,
};
use chess_workloads::miniboot::{miniboot, BootConfig};
use chess_workloads::philosophers::{philosophers, PhilosophersConfig};
use chess_workloads::promise::{promises, PromiseConfig};
use chess_workloads::rwcache::{rw_cache, RwCacheConfig};
use chess_workloads::simple::{deadlock_pair, locked_counter, racy_counter};
use chess_workloads::spinloop::spinloop;
use chess_workloads::treiber::{treiber_stack, TreiberConfig};
use chess_workloads::workerpool::{worker_pool, PoolConfig};
use chess_workloads::wsq::{wsq, WsqConfig};

/// Records everything the two paths must agree on: a flat byte trace of
/// every visited state occurrence and the set of terminal fingerprints.
#[derive(Default)]
struct TraceRecorder {
    /// Concatenated per-state records: depth, fingerprint, signature
    /// length, signature bytes; executions separated by an all-ones
    /// marker. Byte equality of two traces means the searches visited
    /// the same states in the same order with the same canonical forms.
    trace: Vec<u8>,
    terminal_fingerprints: BTreeSet<u64>,
    scratch: Vec<u8>,
}

impl<S: Capture + Clone> Observer<Kernel<S>> for TraceRecorder {
    fn on_state(&mut self, sys: &Kernel<S>, depth: usize) {
        self.trace.extend_from_slice(&(depth as u64).to_le_bytes());
        self.trace
            .extend_from_slice(&sys.fingerprint().to_le_bytes());
        self.scratch.clear();
        sys.state_bytes_into(&mut self.scratch);
        self.trace
            .extend_from_slice(&(self.scratch.len() as u64).to_le_bytes());
        self.trace.extend_from_slice(&self.scratch);
    }

    fn on_execution_end(&mut self, sys: &Kernel<S>, _depth: usize) {
        self.terminal_fingerprints.insert(sys.fingerprint());
        self.trace.extend_from_slice(&u64::MAX.to_le_bytes());
    }
}

/// Runs a bounded random-walk search on one path and returns everything
/// the equivalence check compares.
fn run_path<S, F>(factory: F, fast: bool, executions: u64) -> (SearchReport, TraceRecorder)
where
    S: Capture + Clone + 'static,
    F: Fn() -> Kernel<S>,
{
    let config = Config::fair()
        .with_max_executions(executions)
        .with_stop_on_error(false)
        .with_pooling(fast);
    let mut rec = TraceRecorder::default();
    let report = Explorer::new(
        move || {
            let mut k = factory();
            k.set_fingerprint_caching(fast);
            k
        },
        RandomWalk::new(7),
        config,
    )
    .run_observed(&mut rec);
    (report, rec)
}

/// Asserts full observational equivalence of the two paths on one
/// workload.
fn assert_equivalent<S, F>(name: &str, factory: F, executions: u64)
where
    S: Capture + Clone + 'static,
    F: Fn() -> Kernel<S> + Copy,
{
    let (ref_report, ref_rec) = run_path(factory, false, executions);
    let (fast_report, fast_rec) = run_path(factory, true, executions);

    assert_eq!(
        ref_report.outcome, fast_report.outcome,
        "{name}: outcomes diverge between reference and fast path"
    );
    let mut ref_stats = ref_report.stats.clone();
    let mut fast_stats = fast_report.stats.clone();
    ref_stats.wall = Default::default();
    fast_stats.wall = Default::default();
    assert_eq!(
        ref_stats, fast_stats,
        "{name}: SearchStats diverge between reference and fast path"
    );
    assert_eq!(
        ref_rec.terminal_fingerprints, fast_rec.terminal_fingerprints,
        "{name}: terminal fingerprint sets diverge"
    );
    assert!(
        ref_rec.trace == fast_rec.trace,
        "{name}: visited-state traces are not byte-identical \
         (reference {} bytes, fast {} bytes)",
        ref_rec.trace.len(),
        fast_rec.trace.len()
    );
    assert!(
        !ref_rec.trace.is_empty(),
        "{name}: trace empty — the harness observed nothing"
    );
}

const EXECS: u64 = 40;

#[test]
fn litmus_workloads_equivalent_under_every_memory_model() {
    type LitmusFactory = fn(MemoryModel) -> Kernel<chess_workloads::litmus::LitmusShared>;
    let litmus: [(&str, LitmusFactory); 6] = [
        ("store_buffering", store_buffering),
        ("dekker", dekker),
        ("dekker_fenced", dekker_fenced),
        ("message_passing", message_passing),
        ("load_buffering", load_buffering),
        ("iriw", iriw),
    ];
    for (name, factory) in litmus {
        for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
            assert_equivalent(&format!("{name}({model:?})"), move || factory(model), EXECS);
        }
    }
}

#[test]
fn philosophers_equivalent() {
    assert_equivalent(
        "philosophers(3)",
        || philosophers(PhilosophersConfig::table2(3)),
        EXECS,
    );
}

#[test]
fn wsq_equivalent() {
    assert_equivalent("wsq(1 stealer)", || wsq(WsqConfig::table2(1)), EXECS);
}

#[test]
fn miniboot_equivalent() {
    assert_equivalent("miniboot", || miniboot(BootConfig::small()), EXECS);
}

#[test]
fn queue_and_stack_workloads_equivalent() {
    assert_equivalent(
        "bounded_buffer",
        || bounded_buffer(BufferConfig::correct()),
        EXECS,
    );
    assert_equivalent(
        "fifo_pipeline",
        || fifo_pipeline(FifoConfig::correct()),
        EXECS,
    );
    assert_equivalent(
        "treiber_stack",
        || treiber_stack(TreiberConfig::correct()),
        EXECS,
    );
}

#[test]
fn coordination_workloads_equivalent() {
    assert_equivalent("worker_pool", || worker_pool(PoolConfig::correct()), EXECS);
    assert_equivalent("promises", || promises(PromiseConfig::correct()), EXECS);
    assert_equivalent("bsp", || bsp(BspConfig::correct()), EXECS);
    assert_equivalent("rw_cache", || rw_cache(RwCacheConfig::correct()), EXECS);
}

#[test]
fn simple_and_divergent_workloads_equivalent() {
    assert_equivalent("racy_counter(2)", || racy_counter(2), EXECS);
    assert_equivalent("locked_counter(2)", || locked_counter(2), EXECS);
    assert_equivalent("deadlock_pair", deadlock_pair, EXECS);
    // Spins until its partner flips a flag: exercises the fair
    // scheduler's yield bookkeeping and divergence detection on both
    // paths.
    assert_equivalent("spinloop(1, yield)", || spinloop(1, true), EXECS);
}

/// An exhaustive DFS (not a sampled walk) must also agree — this drives
/// the fast path through backtracking and replay from scratch on every
/// execution, where stale pooled state would be most visible.
#[test]
fn exhaustive_dfs_equivalent_on_dekker() {
    for model in [MemoryModel::Sc, MemoryModel::Tso, MemoryModel::Pso] {
        let factory = move || dekker_fenced(model);
        let run = |fast: bool| {
            let config = Config::fair()
                .with_max_executions(200_000)
                .with_stop_on_error(false)
                .with_pooling(fast);
            let mut rec = TraceRecorder::default();
            let report = Explorer::new(
                move || {
                    let mut k = factory();
                    k.set_fingerprint_caching(fast);
                    k
                },
                Dfs::new(),
                config,
            )
            .run_observed(&mut rec);
            (report, rec)
        };
        let (ref_report, ref_rec) = run(false);
        let (fast_report, fast_rec) = run(true);
        assert!(
            ref_report.outcome.is_exhaustive_pass(),
            "dekker_fenced({model:?}) should complete: {:?}",
            ref_report.outcome
        );
        assert_eq!(ref_report.outcome, fast_report.outcome);
        assert_eq!(
            ref_report.stats.executions, fast_report.stats.executions,
            "dekker_fenced({model:?}): execution counts diverge"
        );
        assert_eq!(
            ref_report.stats.transitions, fast_report.stats.transitions,
            "dekker_fenced({model:?}): transition counts diverge"
        );
        assert_eq!(
            ref_rec.terminal_fingerprints,
            fast_rec.terminal_fingerprints
        );
        assert!(
            ref_rec.trace == fast_rec.trace,
            "dekker_fenced({model:?}): exhaustive traces differ"
        );
    }
}
