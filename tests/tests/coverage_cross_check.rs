//! Cross-checks between the stateless coverage trackers and the stateful
//! reference search across workloads — the Table 2 measurement pipeline
//! validated end to end.

use chess_core::strategy::{ContextBounded, Dfs};
use chess_core::{Config, Explorer, SearchOutcome};
use chess_state::{
    preemption_bounded_states, CoverageTracker, FingerprintCoverage, StateGraph, StatefulLimits,
};
use chess_workloads::channels::{fifo_pipeline, FifoConfig};
use chess_workloads::philosophers::{philosophers, PhilosophersConfig};
use chess_workloads::simple::{locked_counter, racy_counter};
use chess_workloads::spinloop::figure3;

/// Full fair DFS covers exactly the reachable state space on programs
/// small enough to exhaust.
#[test]
fn fair_dfs_exact_coverage_small_programs() {
    fn check<S, F>(factory: F)
    where
        S: chess_kernel::Capture + Clone + 'static,
        F: Fn() -> chess_kernel::Kernel<S> + Copy,
    {
        let total = StateGraph::build(&factory(), StatefulLimits::default())
            .unwrap()
            .state_count();
        let mut cov = CoverageTracker::new();
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run_observed(&mut cov);
        assert_eq!(report.outcome, SearchOutcome::Complete);
        assert_eq!(cov.distinct_states(), total);
        assert!(cov.occurrences() >= cov.distinct_states() as u64);
    }
    check(|| locked_counter(2));
    check(figure3);
    check(|| philosophers(PhilosophersConfig::table2(2)));
}

/// Exact and fingerprint coverage agree on small spaces (no collisions).
#[test]
fn exact_and_fingerprint_coverage_agree() {
    let factory = || philosophers(PhilosophersConfig::table2(2));
    let mut exact = CoverageTracker::new();
    Explorer::new(factory, Dfs::new(), Config::fair()).run_observed(&mut exact);
    let mut fp = FingerprintCoverage::new();
    Explorer::new(factory, Dfs::new(), Config::fair()).run_observed(&mut fp);
    assert_eq!(exact.distinct_states(), fp.distinct_states());
}

/// On a buggy program the search stops at the violation but the states
/// visited up to that point are still recorded.
#[test]
fn coverage_recorded_up_to_violation() {
    let factory = || racy_counter(2);
    let mut cov = CoverageTracker::new();
    let report = Explorer::new(factory, Dfs::new(), Config::fair()).run_observed(&mut cov);
    assert!(matches!(report.outcome, SearchOutcome::SafetyViolation(_)));
    assert!(cov.distinct_states() > 0);
}

/// The stateful preemption-bounded reference is consistent with the full
/// graph: at a large bound it equals the total.
#[test]
fn preemption_reference_converges_to_total() {
    let factory = || {
        fifo_pipeline(FifoConfig {
            items: 2,
            ..FifoConfig::correct()
        })
    };
    let total = StateGraph::build(&factory(), StatefulLimits::default())
        .unwrap()
        .state_count();
    let big = preemption_bounded_states(&factory(), 64, StatefulLimits::default()).unwrap();
    assert_eq!(big, total);
}

/// Fair context-bounded coverage at bound `k` is at least the stateful
/// `k`-preemption reference on the channel pipeline too.
#[test]
fn fair_cb_at_least_reference_on_channels() {
    let factory = || {
        fifo_pipeline(FifoConfig {
            items: 2,
            ..FifoConfig::correct()
        })
    };
    for cb in 0..=2u32 {
        let reference =
            preemption_bounded_states(&factory(), cb, StatefulLimits::default()).unwrap();
        let mut cov = CoverageTracker::new();
        let config = Config::fair().with_detect_cycles(false);
        let report = Explorer::new(factory, ContextBounded::new(cb), config).run_observed(&mut cov);
        assert_eq!(report.outcome, SearchOutcome::Complete, "cb={cb}");
        assert!(
            cov.distinct_states() >= reference,
            "cb={cb}: {} < {reference}",
            cov.distinct_states()
        );
    }
}
