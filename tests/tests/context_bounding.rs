//! Integration tests for context-bounded search and its interaction with
//! fairness (the Section 4 subtlety: fairness-forced preemptions must
//! not count against the bound).

use chess_core::strategy::ContextBounded;
use chess_core::{iterative_context_bounding, Config, Explorer, SearchOutcome, TransitionSystem};
use chess_state::{preemption_bounded_states, CoverageTracker, StatefulLimits};
use chess_workloads::philosophers::{philosophers, PhilosophersConfig};
use chess_workloads::spinloop::figure3;
use chess_workloads::wsq::{wsq, WsqConfig};

/// With fairness, even a preemption bound of ZERO terminates Figure 3:
/// when the spinner is demoted by the priority relation, the switch to
/// the setter is forced by fairness and therefore free. Without the
/// "don't count fairness-forced preemptions" rule the zero-budget search
/// could never leave the spinner.
#[test]
fn fair_cb0_terminates_spin_loop() {
    let config = Config::fair();
    let report = Explorer::new(figure3, ContextBounded::new(0), config).run();
    assert_eq!(report.outcome, SearchOutcome::Complete, "{report}");
    assert_eq!(report.stats.nonterminating, 0);
}

/// Without fairness, cb=0 keeps scheduling the spinner forever and every
/// execution that starts with the spinner hits the depth bound.
#[test]
fn unfair_cb0_spins_to_the_depth_bound() {
    let config = Config::unfair().with_depth_bound(50);
    let report = Explorer::new(figure3, ContextBounded::new(0), config).run();
    assert_eq!(report.outcome, SearchOutcome::Complete);
    assert!(
        report.stats.nonterminating > 0,
        "expected the spinner to burn the depth bound: {:?}",
        report.stats
    );
}

/// Fair coverage grows monotonically with the preemption bound and
/// reaches at least the stateful cb-bounded reference at each bound
/// (fairness can add states beyond the bound, as Table 2 notes).
#[test]
fn fair_cb_coverage_monotone_and_at_least_reference() {
    let factory = || philosophers(PhilosophersConfig::table2(3));
    let mut prev = 0usize;
    for cb in 0..=2u32 {
        let mut cov = CoverageTracker::new();
        let config = Config::fair().with_detect_cycles(false);
        let report = Explorer::new(factory, ContextBounded::new(cb), config).run_observed(&mut cov);
        assert_eq!(report.outcome, SearchOutcome::Complete, "cb={cb}: {report}");
        let reference =
            preemption_bounded_states(&factory(), cb, StatefulLimits::default()).unwrap();
        assert!(
            cov.distinct_states() >= reference,
            "cb={cb}: fair coverage {} < stateful reference {reference}",
            cov.distinct_states()
        );
        assert!(cov.distinct_states() >= prev, "coverage shrank at cb={cb}");
        prev = cov.distinct_states();
    }
}

/// Iterative context bounding finds the seeded WSQ bug at a small bound
/// without exhausting larger ones.
#[test]
fn iterative_cb_stops_at_first_buggy_bound() {
    use chess_workloads::wsq::WsqBug;
    let factory = || wsq(WsqConfig::with_bug(WsqBug::UnsynchronizedSteal));
    let config = Config::fair().with_detect_cycles(false);
    let reports = iterative_context_bounding(factory, config, 8);
    let (last_bound, last) = reports.last().unwrap();
    assert!(
        last.outcome.found_error(),
        "bug not found up to bound {last_bound}"
    );
    assert!(*last_bound <= 3, "bug should need few preemptions");
}

/// The number of executions grows with the preemption bound (the
/// polynomial growth that motivates iterative context bounding).
#[test]
fn execution_count_grows_with_bound() {
    let factory = || wsq(WsqConfig::table2(1));
    let mut counts = Vec::new();
    for cb in 0..=2u32 {
        let config = Config::fair()
            .with_detect_cycles(false)
            .with_max_executions(200_000);
        let report = Explorer::new(factory, ContextBounded::new(cb), config).run();
        assert!(!report.outcome.found_error(), "cb={cb}: {report}");
        counts.push(report.stats.executions);
    }
    assert!(counts[0] < counts[1] && counts[1] < counts[2], "{counts:?}");
}

/// Ablation: charging fairness-forced switches against the budget (the
/// accounting the paper's Section 4 forbids) abandons executions and
/// loses coverage on the spin loop at cb=0, where the sound accounting
/// explores it completely.
#[test]
fn charging_fairness_switches_loses_executions() {
    use chess_core::strategy::ContextBounded;
    use chess_state::CoverageTracker;

    let sound = {
        let mut cov = CoverageTracker::new();
        let config = Config::fair();
        let report = Explorer::new(figure3, ContextBounded::new(0), config).run_observed(&mut cov);
        assert_eq!(report.stats.abandoned, 0);
        cov.distinct_states()
    };
    let charging = {
        let mut cov = CoverageTracker::new();
        let config = Config::fair();
        let report = Explorer::new(
            figure3,
            ContextBounded::new(0).charging_fairness_switches(),
            config,
        )
        .run_observed(&mut cov);
        assert!(
            report.stats.abandoned > 0,
            "the unaffordable demotion must abandon executions: {:?}",
            report.stats
        );
        cov.distinct_states()
    };
    assert!(charging <= sound);
}

/// Sanity: the kernel workload used above has the expected thread count.
#[test]
fn wsq_thread_inventory() {
    let k = wsq(WsqConfig::table2(2));
    // owner + 2 stealers + verifier
    assert_eq!(TransitionSystem::thread_count(&k), 4);
}
