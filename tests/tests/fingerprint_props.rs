//! Property tests for the incrementally-maintained capture fingerprint.
//!
//! The kernel's fast path (`Kernel::set_fingerprint_caching(true)`) keeps
//! per-segment hashes up to date as operations execute instead of
//! re-canonicalizing the whole state on every query. The invariant these
//! properties pin down: after *any* schedule of transitions — under any
//! memory model, through spawns, mutex churn, store-buffer flushes and
//! violations — the cached [`TransitionSystem::fingerprint`] and
//! [`TransitionSystem::state_bytes`] are exactly what a from-scratch
//! canonicalization of the same state produces.
//!
//! The from-scratch oracle is a clone of the kernel with caching turned
//! off: cloning never copies cache state, so the clone recaptures
//! everything.

use chess_core::TransitionSystem;
use chess_kernel::{Capture, Kernel, MemoryModel, ThreadId};
use chess_workloads::litmus::{dekker, iriw, store_buffering};
use chess_workloads::miniboot::{miniboot, BootConfig};
use chess_workloads::treiber::{treiber_stack, TreiberConfig};
use proptest::prelude::*;

/// Drives `kernel` (caching ON) through the schedule encoded by
/// `picks`, checking after every transition that the cached fingerprint
/// and state bytes match a fresh full canonicalization.
fn check_schedule<S: Capture + Clone>(
    mut kernel: Kernel<S>,
    picks: &[(u8, u8)],
) -> Result<(), TestCaseError> {
    kernel.set_fingerprint_caching(true);
    for &(thread_pick, choice_pick) in picks {
        if !kernel.status().is_running() {
            break;
        }
        let enabled: Vec<ThreadId> = (0..kernel.thread_count())
            .map(ThreadId::new)
            .filter(|&t| TransitionSystem::enabled(&kernel, t))
            .collect();
        let t = enabled[thread_pick as usize % enabled.len()];
        let branches = kernel.branching(t) as u32;
        let choice = choice_pick as u32 % branches.max(1);
        TransitionSystem::step(&mut kernel, t, choice);

        // The oracle: a clone recaptures from scratch (clones never
        // inherit cache state), and with caching off it keeps doing so.
        let mut fresh = kernel.clone();
        fresh.set_fingerprint_caching(false);
        prop_assert_eq!(
            kernel.fingerprint(),
            fresh.fingerprint(),
            "cached fingerprint diverged from full canonicalization after stepping {}",
            t
        );
        prop_assert_eq!(
            kernel.state_bytes(),
            fresh.state_bytes(),
            "cached state bytes diverged from full canonicalization after stepping {}",
            t
        );
    }
    Ok(())
}

/// A schedule is a list of (thread pick, data-choice pick) pairs, both
/// reduced modulo whatever is legal at that point.
fn schedules() -> impl Strategy<Value = Vec<(u8, u8)>> {
    proptest::collection::vec((any::<u8>(), any::<u8>()), 1..80)
}

fn models() -> impl Strategy<Value = MemoryModel> {
    prop_oneof![
        Just(MemoryModel::Sc),
        Just(MemoryModel::Tso),
        Just(MemoryModel::Pso),
    ]
}

proptest! {
    #[test]
    fn store_buffering_fingerprints_match_fresh(model in models(), picks in schedules()) {
        check_schedule(store_buffering(model), &picks)?;
    }

    #[test]
    fn dekker_fingerprints_match_fresh(model in models(), picks in schedules()) {
        check_schedule(dekker(model), &picks)?;
    }

    #[test]
    fn iriw_fingerprints_match_fresh(model in models(), picks in schedules()) {
        check_schedule(iriw(model), &picks)?;
    }

    /// Object-heavy workload: mutexes, CAS retries and dynamic data,
    /// exercising the object-table and shared-segment invalidation paths.
    #[test]
    fn treiber_fingerprints_match_fresh(picks in schedules()) {
        check_schedule(treiber_stack(TreiberConfig::correct()), &picks)?;
    }

    /// Spawn-heavy workload: dynamic thread creation grows the cached
    /// per-thread segment tables mid-execution.
    #[test]
    fn miniboot_fingerprints_match_fresh(picks in schedules()) {
        check_schedule(miniboot(BootConfig::small()), &picks)?;
    }
}
