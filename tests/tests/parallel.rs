//! The parallel engine must preserve sequential semantics: one worker is
//! *identical* to the sequential explorer, partitioned DFS covers the
//! tree exactly once, and every error found in parallel replays
//! deterministically through the sequential explorer.

use std::time::Duration;

use chess_core::strategy::{Dfs, FixedSchedule, RandomWalk};
use chess_core::{Config, Explorer, ParallelExplorer, SearchOutcome, SearchReport};
use chess_kernel::{Effects, GuestThread, Kernel, OpDesc, OpResult, StateWriter};
use chess_workloads::simple::racy_counter;

fn zero_wall(mut r: SearchReport) -> SearchReport {
    r.stats.wall = Duration::ZERO;
    r
}

/// A guest taking a fixed number of local steps — acyclic, so DFS
/// execution counts are exact interleaving counts.
#[derive(Clone)]
struct Steps(u8);

impl GuestThread<()> for Steps {
    fn next_op(&self, _: &()) -> OpDesc {
        if self.0 == 0 {
            OpDesc::Finished
        } else {
            OpDesc::Local
        }
    }
    fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
        self.0 -= 1;
    }
    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.0);
    }
    fn box_clone(&self) -> Box<dyn GuestThread<()>> {
        Box::new(self.clone())
    }
}

/// Two threads of 2 and 1 steps: C(3,1) = 3 interleavings, 9 transitions.
fn two_step() -> Kernel<()> {
    let mut k = Kernel::new(());
    k.spawn(Steps(2));
    k.spawn(Steps(1));
    k
}

/// One worker is the sequential search: same seed, same outcome, same
/// statistics (modulo wall-clock).
#[test]
fn jobs_one_random_is_identical_to_sequential() {
    let config = Config::fair().with_max_executions(64);
    let sequential = Explorer::new(|| racy_counter(2), RandomWalk::new(9), config.clone()).run();
    let parallel = ParallelExplorer::new(|| racy_counter(2), config, 1).run_random(9);
    assert_eq!(zero_wall(parallel), zero_wall(sequential));
}

#[test]
fn jobs_one_dfs_is_identical_to_sequential() {
    let sequential = Explorer::new(two_step, Dfs::new(), Config::fair()).run();
    let parallel = ParallelExplorer::new(two_step, Config::fair(), 1).run_dfs();
    assert_eq!(zero_wall(parallel), zero_wall(sequential));
}

/// A planted assertion failure found under four workers yields a
/// schedule that replays to the same violation sequentially.
#[test]
fn planted_failure_under_four_workers_replays_sequentially() {
    let report = ParallelExplorer::new(|| racy_counter(2), Config::fair(), 4).run_random(1);
    let SearchOutcome::SafetyViolation(cex) = &report.outcome else {
        panic!("expected the lost update, got {:?}", report.outcome);
    };
    let replay = Explorer::new(
        || racy_counter(2),
        FixedSchedule::new(cex.schedule.clone()),
        Config::fair(),
    )
    .run();
    let SearchOutcome::SafetyViolation(replayed) = replay.outcome else {
        panic!(
            "schedule did not replay to a violation: {:?}",
            replay.outcome
        );
    };
    assert_eq!(replayed.message, cex.message);
    assert_eq!(replayed.schedule, cex.schedule);
}

/// Partitioned DFS over an acyclic program visits exactly the sequential
/// execution count — a partition of the tree, no duplicates, no gaps.
#[test]
fn parallel_dfs_matches_sequential_execution_count() {
    let sequential = Explorer::new(two_step, Dfs::new(), Config::fair()).run();
    assert_eq!(sequential.stats.executions, 3);
    for jobs in [2, 3, 8] {
        let parallel = ParallelExplorer::new(two_step, Config::fair(), jobs).run_dfs();
        assert_eq!(parallel.outcome, SearchOutcome::Complete, "jobs={jobs}");
        assert_eq!(
            parallel.stats.executions, sequential.stats.executions,
            "jobs={jobs}"
        );
        assert_eq!(parallel.stats.transitions, sequential.stats.transitions);
        assert_eq!(parallel.stats.terminating, sequential.stats.terminating);
    }
}
