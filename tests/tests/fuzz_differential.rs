//! End-to-end exercise of the differential fuzzing harness: a clean
//! batch must agree with the stateful reference on every theorem
//! oracle, and each injected-bug knob must produce a minimized,
//! replayable counterexample of the right kind.

use chess_core::strategy::FixedSchedule;
use chess_core::{
    derive_seed, generate_system, Config, Explorer, FuzzConfig, OutcomeKind, SearchOutcome,
};
use chess_state::{differential_check, OracleLimits, SystemOutcome};

/// A batch of unmodified generated systems: zero oracle discrepancies,
/// and the stateless search must cover every yield-free-reachable state
/// (that oracle is part of `agreed()`).
#[test]
fn clean_batch_has_no_discrepancies() {
    let limits = OracleLimits::default();
    for index in 0..12 {
        let config = FuzzConfig::default().with_seed(derive_seed(3, index));
        let sys = generate_system(&config);
        let verdict = differential_check(|| sys.clone(), &limits);
        assert!(
            verdict.agreed(),
            "seed {}: {:?}",
            config.seed,
            verdict.discrepancies
        );
        assert!(
            !matches!(verdict.outcome, SystemOutcome::Skipped(_)),
            "seed {}: unexpectedly skipped",
            config.seed
        );
    }
}

/// Flipping one injection knob yields a `Buggy` verdict of the matching
/// kind whose minimized schedule still reproduces that kind through a
/// `FixedSchedule` replay, and is no longer than what it minimized.
fn assert_injection_found(configure: impl Fn(&mut FuzzConfig), expected: OutcomeKind) {
    let mut config = FuzzConfig {
        // Full yield density keeps every base spin polite, so the only
        // divergence an injected system can show is the injected one.
        yield_percent: 100,
        ..FuzzConfig::default().with_seed(41)
    };
    configure(&mut config);
    let sys = generate_system(&config);
    let verdict = differential_check(|| sys.clone(), &OracleLimits::default());
    assert!(
        verdict.agreed(),
        "{expected:?}: {:?}",
        verdict.discrepancies
    );
    let SystemOutcome::Buggy {
        kind,
        schedule,
        minimized,
        ..
    } = verdict.outcome
    else {
        panic!("{expected:?}: expected Buggy, got {:?}", verdict.outcome);
    };
    assert_eq!(kind, expected);
    assert!(
        minimized.len() <= schedule.len(),
        "minimizer grew the schedule"
    );

    let report = Explorer::new(
        || sys.clone(),
        FixedSchedule::new(minimized),
        Config::fair().with_depth_bound(10_000),
    )
    .run();
    assert_eq!(
        OutcomeKind::of(&report.outcome),
        Some(expected),
        "minimized schedule replayed to {:?}",
        report.outcome
    );
}

#[test]
fn injected_safety_knob_is_caught_and_minimized() {
    assert_injection_found(|c| c.inject_safety = true, OutcomeKind::Safety);
}

#[test]
fn injected_deadlock_knob_is_caught_and_minimized() {
    assert_injection_found(|c| c.inject_deadlock = true, OutcomeKind::Deadlock);
}

#[test]
fn injected_livelock_knob_is_caught_and_minimized() {
    assert_injection_found(|c| c.inject_livelock = true, OutcomeKind::FairCycle);
}

/// The deadlock reported for an injected lock-order inversion is a real
/// state of the exhaustive graph (Theorem 3's "no false deadlocks"
/// checked one level up, through the public API).
#[test]
fn injected_deadlock_exists_in_the_state_graph() {
    use chess_core::{replay, SystemStatus, TransitionSystem};
    use chess_state::{StateGraph, StatefulLimits};

    let config = FuzzConfig {
        inject_deadlock: true,
        yield_percent: 100,
        ..FuzzConfig::default().with_seed(19)
    };
    let sys = generate_system(&config);
    let report = Explorer::new(
        || sys.clone(),
        chess_core::strategy::Dfs::new(),
        Config::fair().with_depth_bound(10_000),
    )
    .run();
    let SearchOutcome::Deadlock(cex) = report.outcome else {
        panic!("expected deadlock, got {:?}", report.outcome);
    };

    let mut replayed = sys.clone();
    let status = replay(&mut replayed, &cex.schedule);
    assert_eq!(status, SystemStatus::Deadlock);
    let graph = StateGraph::build(&sys, StatefulLimits::default()).unwrap();
    let node = graph
        .state_index(&replayed.state_bytes())
        .expect("deadlock state must be a graph node");
    assert!(graph.deadlock_states().contains(&node));
}
