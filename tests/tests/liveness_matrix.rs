//! The liveness matrix: for every workload variant, the stateless fair
//! search's verdict must agree with the Streett-condition ground truth
//! computed by the stateful reference (`find_fair_scc`), and with the
//! paper's classification of each bug.

use chess_core::strategy::Dfs;
use chess_core::{Config, Explorer, SearchOutcome};
use chess_state::{StateGraph, StatefulLimits};
use chess_workloads::philosophers::{figure1, figure1_polite, philosophers, PhilosophersConfig};
use chess_workloads::promise::{figure8, promises, PromiseConfig, WaitMode};
use chess_workloads::spinloop::{figure3, spinloop};
use chess_workloads::workerpool::{figure7, worker_pool, PoolConfig};

fn fair_search_diverges<S, F>(factory: F) -> bool
where
    S: chess_kernel::Capture + Clone + 'static,
    F: Fn() -> chess_kernel::Kernel<S> + Copy,
{
    let config = Config::fair().with_max_executions(100_000);
    let report = Explorer::new(factory, Dfs::new(), config).run();
    match report.outcome {
        SearchOutcome::Divergence(_) => true,
        SearchOutcome::Complete | SearchOutcome::BudgetExhausted(_) => false,
        o => panic!("unexpected outcome {o:?}"),
    }
}

fn has_fair_cycle<S, F>(factory: F) -> bool
where
    S: chess_kernel::Capture + Clone + 'static,
    F: Fn() -> chess_kernel::Kernel<S>,
{
    StateGraph::build(&factory(), StatefulLimits::default())
        .unwrap()
        .find_fair_scc()
        .is_some()
}

#[test]
fn figure3_clean() {
    assert!(!has_fair_cycle(figure3));
    assert!(!fair_search_diverges(figure3));
}

#[test]
fn spinloop_without_yield_diverges_but_is_not_a_livelock() {
    let f = || spinloop(1, false);
    // No *fair* cycle: the spin starves the setter...
    assert!(!has_fair_cycle(f));
    // ...but the program violates GS, so the fair search diverges.
    assert!(fair_search_diverges(f));
}

#[test]
fn figure1_diverges_matrix() {
    assert!(has_fair_cycle(figure1), "figure 1 livelocks");
    assert!(fair_search_diverges(figure1));
    assert!(has_fair_cycle(figure1_polite));
    assert!(fair_search_diverges(figure1_polite));
}

#[test]
fn ordered_philosophers_clean_matrix() {
    let f = || philosophers(PhilosophersConfig::table2(2));
    assert!(!has_fair_cycle(f));
    assert!(!fair_search_diverges(f));
}

#[test]
fn promise_matrix() {
    assert!(has_fair_cycle(figure8));
    assert!(fair_search_diverges(figure8));
    let correct = || {
        promises(PromiseConfig {
            promises: 1,
            ..PromiseConfig::correct()
        })
    };
    assert!(!has_fair_cycle(correct));
    assert!(!fair_search_diverges(correct));
    let blocking = || {
        promises(PromiseConfig {
            promises: 1,
            wait_mode: WaitMode::Blocking,
            ..PromiseConfig::correct()
        })
    };
    assert!(!has_fair_cycle(blocking));
    assert!(!fair_search_diverges(blocking));
}

#[test]
fn workerpool_matrix() {
    // The figure 7 bug is a GS violation, not a livelock: no fair cycle,
    // yet the fair search diverges (unfair cycle with no yields).
    let buggy_small = || {
        worker_pool(PoolConfig {
            workers: 1,
            tasks: 0,
            buggy_idle: true,
        })
    };
    assert!(!has_fair_cycle(buggy_small));
    assert!(fair_search_diverges(buggy_small));
    assert!(fair_search_diverges(figure7));

    let correct_small = || {
        worker_pool(PoolConfig {
            workers: 1,
            tasks: 1,
            buggy_idle: false,
        })
    };
    assert!(!has_fair_cycle(correct_small));
    assert!(!fair_search_diverges(correct_small));
}
