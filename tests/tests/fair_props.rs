//! Property-based tests of the fair scheduler's window-set bookkeeping
//! (Algorithm 1, lines 12–29), driven with proptest-generated adversarial
//! schedules.
//!
//! A note on the obvious-looking invariant "`S(t) ⊆ E(t)`": it does
//! *not* hold of Algorithm 1 (a thread scheduled in `t`'s window lands
//! in `S(t)` even if it was disabled at some point, while `E(t)` only
//! keeps continuously-enabled threads), so these tests check the
//! invariants the algorithm actually maintains:
//!
//! * `E(u)` is always a subset of the latest enabled set, and only ever
//!   shrinks between yields of `u`;
//! * a processed yield of `t` clears `S(t)` and `D(t)` and reseeds
//!   `E(t)` with the current enabled set;
//! * priority edges are added **only** on a starved-window yield, and
//!   then exactly the edges `{t} × H` with `H = (E(t) ∪ D(t)) \ S(t)`;
//!   every other transition only *removes* edges (the sink-removal of
//!   line 13);
//! * the relation stays acyclic and self-edge-free, so the schedulable
//!   set is empty only when the enabled set is (Theorem 3).

use chess_core::FairScheduler;
use chess_kernel::{ThreadId, TidSet};
use proptest::prelude::*;

/// One generated scheduler step: which schedulable thread to run (as an
/// index modulo the options), the next enabled set (as a bitmask over
/// the thread universe), and whether the transition was a yield.
type Step = (u64, u32, bool);

fn mask_to_set(mask: u32, n: usize) -> TidSet {
    (0..n)
        .filter(|i| mask & (1 << i) != 0)
        .map(ThreadId::new)
        .collect()
}

fn is_subset(a: &TidSet, b: &TidSet) -> bool {
    a.iter().all(|t| b.contains(t))
}

/// Drives a fresh scheduler through `steps`, invoking `check` after
/// every transition with
/// `(scheduler, t, es_before, es_after, yielded, processed, pre)`,
/// where `pre` snapshots `(P, E, D, S)` before the call and `processed`
/// says whether this yield hit the every-`k`-th processing point.
#[allow(clippy::type_complexity)]
fn drive(
    n: usize,
    k: u64,
    steps: &[Step],
    mut check: impl FnMut(
        &FairScheduler,
        ThreadId,
        &TidSet,
        &TidSet,
        bool,
        bool,
        &(Vec<TidSet>, Vec<TidSet>, Vec<TidSet>, Vec<TidSet>),
    ) -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError> {
    let mut fair = FairScheduler::with_k(n, k);
    let mut es = TidSet::full(n);
    for &(pick, mask, yielded) in steps {
        let schedulable = fair.schedulable(&es);
        if schedulable.is_empty() {
            // Only an empty enabled set may starve the scheduler; start a
            // fresh "execution" as the explorer would.
            prop_assert!(es.is_empty(), "Theorem 3: T empty but ES = {es:?}");
            es = TidSet::full(n);
            continue;
        }
        let options: Vec<ThreadId> = schedulable.iter().collect();
        let t = options[(pick % options.len() as u64) as usize];
        let es_after = mask_to_set(mask, n);

        let pre = (
            fair.priority_edges().to_vec(),
            (0..n)
                .map(|i| fair.window_enabled(ThreadId::new(i)).clone())
                .collect::<Vec<_>>(),
            (0..n)
                .map(|i| fair.window_disabled(ThreadId::new(i)).clone())
                .collect::<Vec<_>>(),
            (0..n)
                .map(|i| fair.window_scheduled(ThreadId::new(i)).clone())
                .collect::<Vec<_>>(),
        );
        let yields_before = fair.yield_count(t);
        fair.on_scheduled(t, &es, &es_after, yielded);
        let processed = yielded && (yields_before + 1).is_multiple_of(k);
        check(&fair, t, &es, &es_after, yielded, processed, &pre)?;
        es = es_after;
    }
    Ok(())
}

fn steps_strategy() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec((any::<u64>(), 0u32..64, any::<bool>()), 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `E(u)` only ever holds continuously-enabled threads: after every
    /// transition it is a subset of the new enabled set, and for
    /// non-yielding threads it can only shrink.
    #[test]
    fn enabled_windows_track_continuous_enabledness(
        n in 2usize..6,
        k in 1u64..4,
        steps in steps_strategy(),
    ) {
        drive(n, k, &steps, |fair, t, _esb, es_after, _y, processed, pre| {
            for i in 0..n {
                let u = ThreadId::new(i);
                let e = fair.window_enabled(u);
                prop_assert!(
                    is_subset(e, es_after),
                    "E({u}) = {e:?} ⊄ ES' = {es_after:?}"
                );
                if !(processed && u == t) {
                    prop_assert!(
                        is_subset(e, &pre.1[i]),
                        "E({u}) grew without a processed yield of {u}"
                    );
                }
            }
            Ok(())
        })?;
    }

    /// A processed yield of `t` opens a fresh window: `S(t)` and `D(t)`
    /// are cleared and `E(t)` is reseeded with exactly the current
    /// enabled set. Unprocessed yields (the k-parameterization) and
    /// ordinary transitions leave `t` scheduled in every window.
    #[test]
    fn processed_yields_reset_the_window_sets(
        n in 2usize..6,
        k in 1u64..4,
        steps in steps_strategy(),
    ) {
        drive(n, k, &steps, |fair, t, _esb, es_after, _y, processed, _pre| {
            if processed {
                prop_assert!(fair.window_scheduled(t).is_empty());
                prop_assert!(fair.window_disabled(t).is_empty());
                prop_assert_eq!(fair.window_enabled(t), es_after);
            } else {
                for i in 0..n {
                    prop_assert!(
                        fair.window_scheduled(ThreadId::new(i)).contains(t),
                        "line 16: t must join every S(u)"
                    );
                }
            }
            Ok(())
        })?;
    }

    /// Priority edges are added only on starved-window yields, and then
    /// exactly `{t} × H` with `H = (E(t) ∪ D(t)) \ S(t)` evaluated on
    /// the post-update window sets (lines 14–22 precede line 24). Every
    /// transition also removes all edges with sink `t` (line 13), and
    /// threads never gain edges on other threads' transitions.
    #[test]
    fn edges_added_only_on_starved_window_yields(
        n in 2usize..6,
        k in 1u64..4,
        steps in steps_strategy(),
    ) {
        drive(n, k, &steps, |fair, t, es_before, es_after, _y, processed, pre| {
            let ti = t.index();
            for i in 0..n {
                let mut expect = pre.0[i].clone();
                expect.remove(t);
                if i == ti && processed {
                    // H from the mid-update window sets.
                    let mut e_mid = pre.1[ti].clone();
                    e_mid.intersect_with(es_after);
                    let mut s_mid = pre.3[ti].clone();
                    s_mid.insert(t);
                    let mut d_mid = pre.2[ti].clone();
                    d_mid.union_with(&es_before.difference(es_after));
                    let mut h = e_mid.union(&d_mid);
                    h.difference_with(&s_mid);
                    h.remove(t);
                    expect.union_with(&h);
                }
                prop_assert_eq!(
                    &fair.priority_edges()[i],
                    &expect,
                    "P[{}] after scheduling {} (processed yield: {})",
                    i,
                    t,
                    processed
                );
            }
            Ok(())
        })?;
    }

    /// Theorem 3's loop invariant: the relation stays acyclic with no
    /// self-edges, the schedulable set is always a subset of the enabled
    /// set, and it is empty only when the enabled set is.
    #[test]
    fn priority_relation_never_manufactures_deadlocks(
        n in 2usize..6,
        k in 1u64..4,
        steps in steps_strategy(),
    ) {
        drive(n, k, &steps, |fair, _t, _esb, es_after, _y, _p, _pre| {
            prop_assert!(fair.is_acyclic(), "P cyclic: {:?}", fair.priority_edges());
            for i in 0..n {
                prop_assert!(!fair.priority_edges()[i].contains(ThreadId::new(i)));
            }
            let t_set = fair.schedulable(es_after);
            prop_assert!(is_subset(&t_set, es_after));
            prop_assert_eq!(t_set.is_empty(), es_after.is_empty());
            // And on a full enabled set (everything runnable) at least
            // one thread must still be schedulable.
            prop_assert!(!fair.schedulable(&TidSet::full(n)).is_empty());
            Ok(())
        })?;
    }
}
