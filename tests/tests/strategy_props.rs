//! Property-based tests of the exploration strategies: exhaustive DFS
//! must enumerate exactly the combinatorics of independent threads, data
//! choices must multiply branches, and a large-enough preemption bound
//! must coincide with full DFS.

use chess_core::strategy::{ContextBounded, Dfs};
use chess_core::{Config, Explorer, SearchOutcome};
use chess_kernel::{Effects, GuestThread, Kernel, OpDesc, OpResult, StateWriter};
use proptest::prelude::*;

/// A thread taking `steps` local steps, optionally prefixed by a `width`-
/// way data choice.
#[derive(Clone)]
struct Worker {
    steps: u8,
    choice_width: u8,
    pc: u8,
    chosen: Option<u32>,
}

impl Worker {
    fn plain(steps: u8) -> Self {
        Worker {
            steps,
            choice_width: 0,
            pc: 0,
            chosen: None,
        }
    }

    fn with_choice(steps: u8, width: u8) -> Self {
        Worker {
            choice_width: width,
            ..Worker::plain(steps)
        }
    }
}

impl GuestThread<()> for Worker {
    fn next_op(&self, _: &()) -> OpDesc {
        if self.choice_width > 0 && self.chosen.is_none() {
            OpDesc::Choose(self.choice_width as u32)
        } else if self.pc < self.steps {
            OpDesc::Local
        } else {
            OpDesc::Finished
        }
    }

    fn on_op(&mut self, r: OpResult, _: &mut (), _: &mut Effects<()>) {
        if self.choice_width > 0 && self.chosen.is_none() {
            self.chosen = Some(r.as_choice());
        } else {
            self.pc += 1;
        }
    }

    fn capture(&self, w: &mut StateWriter) {
        w.write_u8(self.pc);
        w.write_u32(self.chosen.map_or(u32::MAX, |c| c));
    }

    fn box_clone(&self) -> Box<dyn GuestThread<()>> {
        Box::new(self.clone())
    }
}

fn multinomial(steps: &[u8]) -> u64 {
    let total: u64 = steps.iter().map(|&s| s as u64).sum();
    let mut result = 1u64;
    let mut acc = 0u64;
    for &s in steps {
        for i in 1..=(s as u64) {
            acc += 1;
            result = result * acc / i;
        }
    }
    let _ = total;
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DFS explores exactly (Σsteps)! / Πsteps! interleavings of
    /// independent straight-line threads.
    #[test]
    fn dfs_counts_multinomial(steps in prop::collection::vec(1u8..4, 1..4)) {
        let steps_c = steps.clone();
        let factory = move || {
            let mut k = Kernel::new(());
            for &s in &steps_c {
                k.spawn(Worker::plain(s));
            }
            k
        };
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        prop_assert_eq!(report.outcome, SearchOutcome::Complete);
        prop_assert_eq!(report.stats.executions, multinomial(&steps));
    }

    /// A preemption bound at least as large as the total number of
    /// transitions is no bound at all: cb == dfs exactly.
    #[test]
    fn saturated_cb_equals_dfs(steps in prop::collection::vec(1u8..4, 1..4)) {
        let total: u32 = steps.iter().map(|&s| s as u32).sum();
        let steps_c = steps.clone();
        let factory = move || {
            let mut k = Kernel::new(());
            for &s in &steps_c {
                k.spawn(Worker::plain(s));
            }
            k
        };
        let dfs = Explorer::new(factory.clone(), Dfs::new(), Config::fair()).run();
        let cb = Explorer::new(factory, ContextBounded::new(total), Config::fair()).run();
        prop_assert_eq!(dfs.stats.executions, cb.stats.executions);
        prop_assert_eq!(dfs.stats.transitions, cb.stats.transitions);
    }

    /// Data choices multiply: a lone thread with a w-way choice and s
    /// steps yields exactly w executions.
    #[test]
    fn choices_enumerate_branches(w in 1u8..6, s in 0u8..3) {
        let factory = move || {
            let mut k = Kernel::new(());
            k.spawn(Worker::with_choice(s, w));
            k
        };
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        prop_assert_eq!(report.outcome, SearchOutcome::Complete);
        prop_assert_eq!(report.stats.executions, w as u64);
    }

    /// Two choosing threads: branches multiply with the interleavings of
    /// the choice transitions themselves.
    #[test]
    fn parallel_choices_multiply(w1 in 1u8..4, w2 in 1u8..4) {
        let factory = move || {
            let mut k = Kernel::new(());
            k.spawn(Worker::with_choice(0, w1));
            k.spawn(Worker::with_choice(0, w2));
            k
        };
        let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
        // Each execution is 2 transitions; the scheduler picks which
        // thread chooses first (2 orders), each choice independent.
        prop_assert_eq!(
            report.stats.executions,
            2 * (w1 as u64) * (w2 as u64)
        );
    }
}
