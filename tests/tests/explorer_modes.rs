//! Integration tests for the explorer's configuration surface: continue
//! past errors, divergence accounting in unfair mode, heuristic
//! divergence classification without cycle detection, and budgets.

use std::time::Duration;

use chess_core::strategy::{Dfs, RandomWalk};
use chess_core::{BudgetKind, Config, DivergenceKind, Explorer, SearchOutcome};
use chess_workloads::promise::figure8;
use chess_workloads::simple::racy_counter;
use chess_workloads::spinloop::{figure3, spinloop};

/// With `stop_on_error = false`, the search keeps going, counts every
/// violating execution, and still records where the first error was.
#[test]
fn continue_past_errors_counts_violations() {
    let config = Config::fair().with_stop_on_error(false);
    let report = Explorer::new(|| racy_counter(2), Dfs::new(), config).run();
    assert_eq!(report.outcome, SearchOutcome::Complete);
    assert!(report.stats.violations >= 2, "{:?}", report.stats);
    assert!(report.stats.first_error_execution.is_some());
    // The violating executions are a strict subset.
    assert!(report.stats.violations < report.stats.executions);
}

/// In unfair mode, executions that hit the depth bound are *counted*
/// (Figure 2's metric) but never raised as errors.
#[test]
fn unfair_bound_hits_are_counted_not_raised() {
    let config = Config::unfair().with_depth_bound(30);
    let report = Explorer::new(figure3, Dfs::new(), config).run();
    assert_eq!(report.outcome, SearchOutcome::Complete);
    assert!(report.stats.nonterminating > 0);
    assert_eq!(report.stats.divergences, 0);
}

/// Without cycle detection, a bound-hitting fair execution is classified
/// heuristically: a thread that took `gs_threshold` consecutive steps
/// without yielding makes it a good-samaritan suspect...
#[test]
fn gs_suspect_heuristic_without_cycle_detection() {
    let factory = || spinloop(1, false);
    let config = Config::fair()
        .with_detect_cycles(false)
        .with_depth_bound(400);
    let report = Explorer::new(factory, Dfs::new(), config).run();
    match report.outcome {
        SearchOutcome::Divergence(d) => match d.kind {
            DivergenceKind::GoodSamaritanSuspect {
                steps_without_yield,
                ..
            } => assert!(steps_without_yield >= 100),
            k => panic!("expected GS suspect, got {k:?}"),
        },
        o => panic!("expected divergence, got {o:?}"),
    }
}

/// ...while an execution whose threads all keep yielding is a livelock
/// suspect.
#[test]
fn livelock_suspect_heuristic_without_cycle_detection() {
    let config = Config::fair()
        .with_detect_cycles(false)
        .with_depth_bound(400);
    let report = Explorer::new(figure8, Dfs::new(), config).run();
    match report.outcome {
        SearchOutcome::Divergence(d) => {
            assert!(
                matches!(d.kind, DivergenceKind::LivelockSuspect),
                "got {:?}",
                d.kind
            );
            assert_eq!(d.schedule.len(), 400);
        }
        o => panic!("expected divergence, got {o:?}"),
    }
}

/// The wall-clock budget also fires in the middle of a very long
/// execution, not just between executions.
#[test]
fn time_budget_interrupts_long_executions() {
    // Unfair random walk on the no-yield spinner: a single execution can
    // spin forever; the depth bound is huge so only time can stop it.
    let factory = || spinloop(1, false);
    let config = Config::unfair()
        .with_depth_bound(usize::MAX / 2)
        .with_time_budget(Duration::from_millis(300));
    let report = Explorer::new(factory, RandomWalk::new(5), config).run();
    assert_eq!(
        report.outcome,
        SearchOutcome::BudgetExhausted(BudgetKind::Time)
    );
    assert!(report.stats.wall < Duration::from_secs(30));
}

/// Divergence schedules replay: re-running the recorded schedule drives
/// the program into the same non-progress region.
#[test]
fn divergence_schedule_replays() {
    let report = Explorer::new(figure8, Dfs::new(), Config::fair()).run();
    let SearchOutcome::Divergence(d) = report.outcome else {
        panic!("expected divergence");
    };
    let mut sys = figure8();
    let status = chess_core::replay(&mut sys, &d.schedule);
    // The livelock keeps the program formally running forever.
    assert!(status.is_running());
}
