//! Cross-layer tests of the guest-declared effects API.
//!
//! The kernel workloads now declare per-cell read/write sets instead of
//! inheriting the blanket whole-state write, so sleep-set reduction must
//! actually prune their interleavings while agreeing with the unreduced
//! search and the stateful reference on every oracle — and capture-diff
//! validation must accept every declaration at every reachable schedule
//! point.

use chess_core::strategy::{Dfs, RandomWalk};
use chess_core::{Config, Explorer, SearchOutcome};
use chess_kernel::{Capture, Kernel, MemoryModel};
use chess_state::{differential_check, OracleLimits};
use chess_workloads::litmus::{
    dekker, dekker_fenced, iriw, load_buffering, message_passing, store_buffering,
};
use chess_workloads::miniboot::{miniboot, BootConfig};
use chess_workloads::simple::{deadlock_pair, locked_counter, ordered_pair, racy_counter};
use chess_workloads::wsq::{wsq, WsqConfig};
use proptest::prelude::*;

/// Wraps a kernel factory so every produced kernel validates declared
/// effects by capture-diffing around each step.
fn validated<S, F>(factory: F) -> impl Fn() -> Kernel<S> + Copy
where
    S: Capture + Clone,
    F: Fn() -> Kernel<S> + Copy,
{
    move || {
        let mut k = factory();
        k.set_validate_effects(true);
        k
    }
}

/// Runs the full counting search twice — unreduced and with sleep sets —
/// and returns `(plain, reduced)` execution counts after asserting both
/// passes agree on the error classes they saw.
fn count_both<S, F>(factory: F) -> (u64, u64)
where
    S: Capture + Clone,
    F: Fn() -> Kernel<S> + Copy,
{
    let config = Config::fair()
        .with_stop_on_error(false)
        .with_detect_cycles(false)
        .with_max_executions(2_000_000);
    let plain = Explorer::new(factory, Dfs::new(), config.clone()).run();
    let reduced = Explorer::new(factory, Dfs::with_sleep_sets(), config).run();
    assert!(
        !matches!(plain.outcome, SearchOutcome::BudgetExhausted(_)),
        "unreduced pass exhausted its budget: {plain}"
    );
    assert_eq!(
        plain.stats.violations > 0,
        reduced.stats.violations > 0,
        "verdict class must survive reduction (plain {plain}, reduced {reduced})"
    );
    assert_eq!(plain.stats.deadlocks > 0, reduced.stats.deadlocks > 0);
    assert!(
        reduced.stats.executions <= plain.stats.executions,
        "reduction may never explore more: {} vs {}",
        reduced.stats.executions,
        plain.stats.executions
    );
    (plain.stats.executions, reduced.stats.executions)
}

/// With declared effects, the locked counter's critical sections commute
/// and sleep sets prune real work — the whole point of this layer.
#[test]
fn sleep_sets_pay_on_locked_counter() {
    let (plain, reduced) = count_both(|| locked_counter(2));
    assert!(
        reduced < plain,
        "declared effects must let sleep sets prune the locked counter \
         ({reduced} vs {plain} executions)"
    );
}

/// The fenced Dekker's exhaustive count drops once `Fence` conflicts only
/// with the issuing thread's own buffer traffic (and the register file is
/// declared per-cell): disjoint loads and fences commute.
#[test]
fn fenced_dekker_exhaustive_count_drops() {
    for model in [MemoryModel::Tso, MemoryModel::Pso] {
        let (plain, reduced) = count_both(move || dekker_fenced(model));
        assert!(
            reduced < plain,
            "{model}: fenced Dekker must reduce ({reduced} vs {plain} executions)"
        );
    }
}

/// Regression for the sleep-footprint staleness assertion: exhaustive
/// sleep-set searches over every buffered-store litmus shape run under
/// TSO and PSO in a debug build, where any sleeping flush whose footprint
/// went stale without a waking conflict panics. The buffer-marker
/// accesses on buffered stores and flushes are what keep this silent.
#[test]
fn sleep_sets_agree_on_tso_pso_litmus() {
    type Factory = fn(MemoryModel) -> Kernel<chess_workloads::litmus::LitmusShared>;
    let factories: &[(&str, Factory)] = &[
        ("sb", store_buffering),
        ("dekker", dekker),
        ("dekker-fenced", dekker_fenced),
        ("mp", message_passing),
        ("lb", load_buffering),
        ("iriw", iriw),
    ];
    for &(name, factory) in factories {
        for model in MemoryModel::ALL {
            let (plain, reduced) = count_both(move || factory(model));
            assert!(
                reduced <= plain,
                "{name} under {model}: {reduced} vs {plain}"
            );
        }
    }
}

/// The differential harness (stateful reference + unreduced pass +
/// sleep-set pass + parallel cross-checks) on the real kernel workloads:
/// verdicts, terminal-state sets, and yield-free coverage must all agree.
#[test]
fn differential_oracles_pass_on_kernel_workloads() {
    let limits = OracleLimits {
        reduce: true,
        ..OracleLimits::default()
    };
    let check = |name: &str, v: chess_state::Verdict| {
        assert!(v.agreed(), "{name}: {:?}", v.discrepancies);
        assert!(
            v.sleep_executions <= v.dfs_executions,
            "{name}: reduced pass explored more ({} vs {})",
            v.sleep_executions,
            v.dfs_executions
        );
    };
    check(
        "racy-counter",
        differential_check(|| racy_counter(2), &limits),
    );
    check(
        "locked-counter",
        differential_check(|| locked_counter(2), &limits),
    );
    check("deadlock-pair", differential_check(deadlock_pair, &limits));
    check("ordered-pair", differential_check(ordered_pair, &limits));
    for model in MemoryModel::ALL {
        check(
            &format!("sb/{model}"),
            differential_check(move || store_buffering(model), &limits),
        );
        check(
            &format!("dekker-fenced/{model}"),
            differential_check(move || dekker_fenced(model), &limits),
        );
        check(
            &format!("mp/{model}"),
            differential_check(move || message_passing(model), &limits),
        );
    }
    check(
        "wsq",
        differential_check(
            || {
                wsq(WsqConfig {
                    stealers: 1,
                    items: 1,
                    burst: 0,
                    bug: None,
                })
            },
            &limits,
        ),
    );
    check(
        "miniboot",
        differential_check(
            || {
                miniboot(BootConfig {
                    services: 1,
                    work_per_service: 1,
                    init_steps: 1,
                })
            },
            &limits,
        ),
    );
}

/// Exhaustive validated searches over the *correct* workloads: with
/// capture-diff validation on, any mutation outside a declared write set
/// would surface as a safety violation, so `Complete` here proves every
/// declaration covers everything its thread actually writes.
#[test]
fn validation_accepts_declarations_exhaustively() {
    let config = Config::fair()
        .with_detect_cycles(false)
        .with_max_executions(500_000);
    let complete = |name: &str, outcome: SearchOutcome| {
        assert_eq!(
            outcome,
            SearchOutcome::Complete,
            "{name}: validated search must stay clean"
        );
    };
    complete(
        "locked-counter",
        Explorer::new(validated(|| locked_counter(2)), Dfs::new(), config.clone())
            .run()
            .outcome,
    );
    complete(
        "ordered-pair",
        Explorer::new(validated(ordered_pair), Dfs::new(), config.clone())
            .run()
            .outcome,
    );
    for model in MemoryModel::ALL {
        complete(
            &format!("dekker-fenced/{model}"),
            Explorer::new(
                validated(move || dekker_fenced(model)),
                Dfs::new(),
                config.clone(),
            )
            .run()
            .outcome,
        );
        complete(
            &format!("lb/{model}"),
            Explorer::new(
                validated(move || load_buffering(model)),
                Dfs::new(),
                config.clone(),
            )
            .run()
            .outcome,
        );
    }
}

/// Random validated walks over every workload family, including the
/// buggy ones: a genuine workload bug may fire, but the capture-diff
/// layer must never flag an undeclared shared-state write — i.e. at
/// every reachable schedule point the inferred write set is a subset of
/// the declared one.
fn assert_no_undeclared_writes<S, F>(name: &str, factory: F, seed: u64)
where
    S: Capture + Clone,
    F: Fn() -> Kernel<S> + Copy,
{
    let config = Config::fair()
        .with_detect_cycles(false)
        .with_max_executions(40);
    let report = Explorer::new(validated(factory), RandomWalk::new(seed), config).run();
    if let SearchOutcome::SafetyViolation(cex) = &report.outcome {
        assert!(
            !cex.message.contains("undeclared shared-state write"),
            "{name}: {}",
            cex.message
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn declared_write_sets_cover_observed_writes(seed in any::<u64>()) {
        assert_no_undeclared_writes("racy-counter", || racy_counter(3), seed);
        assert_no_undeclared_writes("locked-counter", || locked_counter(3), seed);
        assert_no_undeclared_writes("deadlock-pair", deadlock_pair, seed);
        for model in MemoryModel::ALL {
            assert_no_undeclared_writes("sb", move || store_buffering(model), seed);
            assert_no_undeclared_writes("dekker", move || dekker(model), seed);
            assert_no_undeclared_writes("mp", move || message_passing(model), seed);
            assert_no_undeclared_writes("iriw", move || iriw(model), seed);
        }
        assert_no_undeclared_writes("wsq", || wsq(WsqConfig::table2(2)), seed);
        assert_no_undeclared_writes(
            "wsq-bug",
            || wsq(WsqConfig::with_bug(chess_workloads::wsq::WsqBug::UnsynchronizedSteal)),
            seed,
        );
        assert_no_undeclared_writes("miniboot", || miniboot(BootConfig::small()), seed);
    }
}
