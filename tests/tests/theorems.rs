//! Tests for the paper's theorems (Section 3), on both hand-built
//! systems and property-based random drives.

use chess_core::strategy::Dfs;
use chess_core::{Config, Explorer, FairScheduler, SearchOutcome};
use chess_kernel::{ThreadId, TidSet};
use chess_state::{CoverageTracker, StateGraph, StatefulLimits};
use chess_workloads::spinloop::{figure3, spinloop};
use proptest::prelude::*;

fn tid(i: usize) -> ThreadId {
    ThreadId::new(i)
}

proptest! {
    /// Theorem 3: at every scheduling point, `T` is empty iff `ES` is
    /// empty, no matter how the scheduler is driven.
    #[test]
    fn theorem3_no_false_deadlocks(
        seed in any::<u64>(),
        n in 2usize..6,
        steps in 1usize..300,
    ) {
        let mut rng = seed | 1;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut fair = FairScheduler::new(n);
        let mut es = TidSet::full(n);
        for _ in 0..steps {
            let t = fair.schedulable(&es);
            prop_assert_eq!(t.is_empty(), es.is_empty(), "Theorem 3 violated");
            prop_assert!(fair.is_acyclic(), "P must stay acyclic");
            if t.is_empty() {
                es = TidSet::full(n);
                continue;
            }
            let options: Vec<_> = t.iter().collect();
            let pick = options[(next() % options.len() as u64) as usize];
            let mut es_after = TidSet::new();
            for i in 0..n {
                if next() % 3 != 0 {
                    es_after.insert(tid(i));
                }
            }
            let yielded = next() % 3 == 0;
            fair.on_scheduled(pick, &es, &es_after, yielded);
            es = es_after;
        }
    }

    /// Theorem 1 (finite approximation): drive the fair scheduler with
    /// an adversary that always prefers thread 0 but yields on every
    /// k-th step of each thread (the program satisfies GS). Thread `n-1`
    /// stays enabled throughout; it must be scheduled within a bounded
    /// window — the adversary cannot starve it.
    #[test]
    fn theorem1_starvation_freedom_under_gs(
        n in 2usize..5,
        yield_period in 1u64..4,
    ) {
        let mut fair = FairScheduler::new(n);
        let es = TidSet::full(n); // everyone enabled forever
        let victim = tid(n - 1);
        let mut steps_since_victim = 0u64;
        let mut per_thread_steps = vec![0u64; n];
        // A generous bound: each of the other threads can take at most
        // O(yield_period) steps per window before its edge to the victim
        // forces the victim to run.
        let bound = (n as u64) * (yield_period + 2) * 4;
        for _ in 0..2000 {
            let schedulable = fair.schedulable(&es);
            // Adversary: pick the lowest schedulable thread (prefers 0).
            let pick = schedulable.first().expect("Theorem 3");
            per_thread_steps[pick.index()] += 1;
            // The guest yields every `yield_period` of its own steps.
            let yielded = per_thread_steps[pick.index()] % yield_period == 0;
            fair.on_scheduled(pick, &es, &es, yielded);
            if pick == victim {
                steps_since_victim = 0;
            } else {
                steps_since_victim += 1;
                prop_assert!(
                    steps_since_victim <= bound,
                    "victim starved for {steps_since_victim} > {bound} steps"
                );
            }
        }
    }
}

/// Theorem 4: the fair scheduler unrolls an unfair cycle at most twice.
/// In Figure 3, the spinner's loop (2 transitions + the paper counts
/// windows) can never be taken more than a handful of times in a row
/// before the setter is forced in.
#[test]
fn theorem4_unfair_cycle_cut_off() {
    // Unrolling the spin cycle more than twice would make executions
    // arbitrarily long; the priority edge added at the spinner's second
    // yield caps every execution at a small depth.
    let report = Explorer::new(figure3, Dfs::new(), Config::fair()).run();
    assert_eq!(report.outcome, SearchOutcome::Complete);
    // Each execution: t's 1 step + u's loop iterations (2 steps each) +
    // u's exit check. With the cycle cut after ≤2 unrollings per window,
    // executions stay short.
    assert!(
        report.stats.max_depth <= 12,
        "executions too deep: {} (cycle not pruned?)",
        report.stats.max_depth
    );
}

/// Theorem 5: every state reachable by a yield-free execution is
/// visited. The no-yield spin variant's entire state space is yield-free
/// reachable... but it diverges; instead use workloads without yields:
/// the racy counter. The fair search must cover the *full* state space.
#[test]
fn theorem5_yield_free_full_coverage() {
    use chess_workloads::simple::locked_counter;
    let factory = || locked_counter(2);
    let total = StateGraph::build(&factory(), StatefulLimits::default())
        .unwrap()
        .state_count();
    let mut cov = CoverageTracker::new();
    let config = Config::fair();
    Explorer::new(factory, Dfs::new(), config).run_observed(&mut cov);
    assert_eq!(cov.distinct_states(), total);
}

/// Theorem 5 on a cyclic program: every state of Figure 3 is reachable
/// by a yield-free execution (the loop body only yields after a failed
/// check, and every state is reachable without completing an iteration
/// twice)... more precisely, fair DFS covers the whole (tiny) space.
#[test]
fn theorem5_figure3_full_coverage() {
    let total = StateGraph::build(&figure3(), StatefulLimits::default())
        .unwrap()
        .state_count();
    let mut cov = CoverageTracker::new();
    Explorer::new(figure3, Dfs::new(), Config::fair()).run_observed(&mut cov);
    assert_eq!(cov.distinct_states(), total);
}

/// Theorem 2 (contrapositive flavor): on a program whose every infinite
/// execution is unfair-and-GS (Figure 3 with several spinners), the fair
/// search terminates.
#[test]
fn theorem2_termination_on_fair_terminating_programs() {
    let factory = || spinloop(2, true);
    let report = Explorer::new(factory, Dfs::new(), Config::fair()).run();
    assert_eq!(report.outcome, SearchOutcome::Complete);
    assert_eq!(report.stats.nonterminating, 0);
}

/// Theorem 6 / livelock detection: programs with a reachable fair cycle
/// of low yield count produce divergence. Ground truth from the Streett
/// reference must agree with the stateless detector.
#[test]
fn theorem6_livelock_agreement_with_ground_truth() {
    use chess_workloads::philosophers::figure1_polite;
    use chess_workloads::promise::figure8;

    // Livelocking programs: ground truth says fair cycle, stateless
    // search diverges.
    let g = StateGraph::build(&figure1_polite(), StatefulLimits::default()).unwrap();
    assert!(g.find_fair_scc().is_some());
    let report = Explorer::new(figure1_polite, Dfs::new(), Config::fair()).run();
    assert!(matches!(report.outcome, SearchOutcome::Divergence(_)));

    let g = StateGraph::build(&figure8(), StatefulLimits::default()).unwrap();
    assert!(g.find_fair_scc().is_some());
    let report = Explorer::new(figure8, Dfs::new(), Config::fair()).run();
    assert!(matches!(report.outcome, SearchOutcome::Divergence(_)));

    // Livelock-free cyclic program: no fair cycle, search completes.
    let g = StateGraph::build(&figure3(), StatefulLimits::default()).unwrap();
    assert!(g.find_fair_scc().is_none());
    let report = Explorer::new(figure3, Dfs::new(), Config::fair()).run();
    assert_eq!(report.outcome, SearchOutcome::Complete);
}
