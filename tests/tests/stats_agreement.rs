//! The kernel's per-execution `ExecStats` and the explorer's search-level
//! `SearchStats` describe the same transitions, so their counts must
//! agree — including the violating transition of an execution that ends
//! in a safety violation, which the kernel's early-return paths used to
//! drop while the explorer still counted it.

use chess_core::strategy::Dfs;
use chess_core::{Config, Explorer, Observer};
use chess_kernel::{Capture, Effects, GuestThread, Kernel, MutexId, OpDesc, OpResult};

/// Sums the kernel's own step counter over every execution of a search.
#[derive(Default)]
struct KernelSteps {
    total_steps: u64,
    executions: u64,
}

impl<S: Capture + Clone> Observer<Kernel<S>> for KernelSteps {
    fn on_execution_end(&mut self, sys: &Kernel<S>, _depth: usize) {
        self.total_steps += sys.stats().steps;
        self.executions += 1;
    }
}

/// Takes one harmless step, then releases a mutex it never acquired —
/// every execution ends in an object-misuse violation, exercising the
/// kernel's early-return path in `step`.
#[derive(Clone)]
struct BadRelease {
    pc: u8,
    m: MutexId,
}

impl GuestThread<()> for BadRelease {
    fn next_op(&self, _: &()) -> OpDesc {
        match self.pc {
            0 => OpDesc::Local,
            1 => OpDesc::Release(self.m),
            _ => OpDesc::Finished,
        }
    }
    fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
        self.pc += 1;
    }
    fn box_clone(&self) -> Box<dyn GuestThread<()>> {
        Box::new(self.clone())
    }
}

fn bad_release_pair() -> Kernel<()> {
    let mut k = Kernel::new(());
    let m = k.add_mutex();
    k.spawn(BadRelease { pc: 0, m });
    k.spawn(BadRelease { pc: 0, m });
    k
}

#[test]
fn kernel_steps_agree_with_search_transitions_on_violations() {
    let mut obs = KernelSteps::default();
    let config = Config::fair().with_stop_on_error(false);
    let report = Explorer::new(bad_release_pair, Dfs::new(), config).run_observed(&mut obs);
    assert!(
        report.stats.violations > 0,
        "every interleaving misuses the mutex: {:?}",
        report.stats
    );
    assert_eq!(obs.executions, report.stats.executions);
    assert_eq!(
        obs.total_steps, report.stats.transitions,
        "kernel ExecStats.steps and explorer SearchStats.transitions \
         must count the same transitions, violating ones included"
    );
}

#[test]
fn kernel_steps_agree_with_search_transitions_when_terminating() {
    let factory = || {
        let mut k = Kernel::new(());
        let m = k.add_mutex();
        // A well-behaved acquire/release pair: no violations.
        #[derive(Clone)]
        struct Locker {
            pc: u8,
            m: MutexId,
        }
        impl GuestThread<()> for Locker {
            fn next_op(&self, _: &()) -> OpDesc {
                match self.pc {
                    0 => OpDesc::Acquire(self.m),
                    1 => OpDesc::Release(self.m),
                    _ => OpDesc::Finished,
                }
            }
            fn on_op(&mut self, _: OpResult, _: &mut (), _: &mut Effects<()>) {
                self.pc += 1;
            }
            fn box_clone(&self) -> Box<dyn GuestThread<()>> {
                Box::new(self.clone())
            }
        }
        k.spawn(Locker { pc: 0, m });
        k.spawn(Locker { pc: 0, m });
        k
    };
    let mut obs = KernelSteps::default();
    let report = Explorer::new(factory, Dfs::new(), Config::fair()).run_observed(&mut obs);
    assert!(!report.outcome.found_error(), "{report}");
    assert_eq!(obs.total_steps, report.stats.transitions);
}
