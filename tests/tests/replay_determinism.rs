//! Stateless model checking stands on deterministic re-execution: the
//! same schedule must reproduce the same states, outcomes and
//! counterexamples, across every workload.

use chess_core::strategy::{FixedSchedule, RandomWalk};
use chess_core::{
    generate_system, replay, Config, Explorer, FuzzConfig, FuzzOp, FuzzSystem, ParallelExplorer,
    Schedule, SearchOutcome, SystemStatus, TransitionSystem,
};
use chess_workloads::channels::{fifo_pipeline, FifoConfig};
use chess_workloads::miniboot::{miniboot, BootConfig};
use chess_workloads::philosophers::{philosophers, PhilosophersConfig};
use chess_workloads::promise::{promises, PromiseConfig};
use chess_workloads::simple::racy_counter;
use chess_workloads::workerpool::{worker_pool, PoolConfig};
use chess_workloads::wsq::{wsq, WsqConfig};

/// Runs one random execution, recording the schedule and per-step
/// fingerprints; replays it and checks the fingerprints match exactly.
fn assert_replays<P, F>(mut factory: F)
where
    P: TransitionSystem,
    F: FnMut() -> P,
{
    use chess_core::Decision;

    let mut sys = factory();
    let mut schedule: Vec<Decision> = Vec::new();
    let mut fingerprints = vec![sys.fingerprint()];
    let mut rng: u64 = 0xDEADBEEF;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for _ in 0..400 {
        if !sys.status().is_running() {
            break;
        }
        let es = sys.enabled_set();
        let options: Vec<_> = es.iter().collect();
        let t = options[(next() % options.len() as u64) as usize];
        let branch = (next() % sys.branching(t) as u64) as u32;
        sys.step(t, branch);
        schedule.push(Decision {
            thread: t,
            choice: branch,
        });
        fingerprints.push(sys.fingerprint());
    }

    // Replay on a fresh instance.
    let mut sys2 = factory();
    let mut fingerprints2 = vec![sys2.fingerprint()];
    for d in &schedule {
        sys2.step(d.thread, d.choice);
        fingerprints2.push(sys2.fingerprint());
    }
    assert_eq!(fingerprints, fingerprints2, "nondeterministic replay");
    assert_eq!(sys.state_bytes(), sys2.state_bytes());
}

#[test]
fn all_workloads_replay_deterministically() {
    assert_replays(|| racy_counter(3));
    assert_replays(|| philosophers(PhilosophersConfig::table2(3)));
    assert_replays(|| wsq(WsqConfig::table2(2)));
    assert_replays(|| promises(PromiseConfig::correct()));
    assert_replays(|| worker_pool(PoolConfig::correct()));
    assert_replays(|| fifo_pipeline(FifoConfig::correct_fanin()));
    assert_replays(|| miniboot(BootConfig::small()));
}

/// A counterexample's schedule, replayed via the public `replay` helper,
/// reproduces the violation.
#[test]
fn counterexample_schedules_reproduce_violations() {
    let factory = || racy_counter(2);
    let report = Explorer::new(factory, RandomWalk::new(11), Config::fair()).run();
    let cex = match report.outcome {
        SearchOutcome::SafetyViolation(c) => c,
        o => panic!("expected violation, got {o:?}"),
    };
    let mut sys = factory();
    let status = replay(&mut sys, &cex.schedule);
    assert!(
        matches!(status, SystemStatus::Violation(..)),
        "replay produced {status:?}"
    );
}

/// The FixedSchedule strategy drives the explorer through exactly the
/// recorded execution.
#[test]
fn fixed_schedule_reproduces_search_outcome() {
    let factory = || racy_counter(2);
    let report = Explorer::new(factory, RandomWalk::new(11), Config::fair()).run();
    let cex = report.outcome.counterexample().unwrap().clone();

    let config = Config::fair();
    let report2 = Explorer::new(factory, FixedSchedule::new(cex.schedule.clone()), config).run();
    match report2.outcome {
        SearchOutcome::SafetyViolation(c2) => {
            assert_eq!(c2.schedule, cex.schedule);
            assert_eq!(c2.message, cex.message);
        }
        o => panic!("replay search produced {o:?}"),
    }
}

/// Rendering a counterexample twice gives identical text (pure replay).
#[test]
fn render_is_pure() {
    let factory = || racy_counter(2);
    let report = Explorer::new(factory, RandomWalk::new(3), Config::fair()).run();
    let cex = report.outcome.counterexample().unwrap();
    assert_eq!(cex.render(factory), cex.render(factory));
}

/// Replays `schedule` on a fresh system twice, recording the full
/// byte-level state trace of each run, and requires the two traces to be
/// identical (the fuzzer's "byte-identical replay" oracle).
fn assert_byte_identical_replays<P, F>(mut factory: F, schedule: &Schedule)
where
    P: TransitionSystem,
    F: FnMut() -> P,
{
    let trace = |sys: &mut P| {
        let mut bytes = vec![sys.state_bytes()];
        for d in schedule {
            sys.step(d.thread, d.choice);
            bytes.push(sys.state_bytes());
        }
        bytes
    };
    let (mut a, mut b) = (factory(), factory());
    assert_eq!(
        trace(&mut a),
        trace(&mut b),
        "two replays of the same schedule diverged at the byte level"
    );
}

/// A fuzzer-generated system with an injected safety bug found through
/// each of the three parallel shard modes (DFS frontier partitioning,
/// sharded random walks, iterative context bounding): every mode's
/// counterexample replays byte-identically twice through
/// [`FixedSchedule`], and the explorer reproduces the same outcome.
#[test]
fn fuzzer_counterexamples_replay_across_parallel_modes() {
    let config = FuzzConfig {
        inject_safety: true,
        yield_percent: 100,
        ..FuzzConfig::default().with_seed(77)
    };
    let sys = generate_system(&config);
    let search = Config::fair().with_depth_bound(10_000);

    let parallel = ParallelExplorer::new(|| sys.clone(), search.clone(), 2);
    let outcomes = [
        ("dfs", parallel.run_dfs().outcome),
        ("random", parallel.run_random(7).outcome),
        (
            "iterative-cb",
            parallel
                .run_iterative_cb(4)
                .into_iter()
                .map(|(_, r)| r.outcome)
                .find(|o| o.found_error())
                .expect("some context bound finds the injected bug"),
        ),
    ];
    for (mode, outcome) in outcomes {
        let SearchOutcome::SafetyViolation(cex) = outcome else {
            panic!("{mode}: expected the injected safety violation, got {outcome:?}");
        };
        assert_byte_identical_replays(|| sys.clone(), &cex.schedule);

        let replayed = Explorer::new(
            || sys.clone(),
            FixedSchedule::new(cex.schedule.clone()),
            search.clone(),
        )
        .run();
        let SearchOutcome::SafetyViolation(cex2) = replayed.outcome else {
            panic!("{mode}: FixedSchedule did not reproduce the violation");
        };
        assert_eq!(cex2.schedule, cex.schedule, "{mode}: schedule changed");
        assert_eq!(cex2.message, cex.message, "{mode}: message changed");
    }
}

/// Golden output: rendering a counterexample on a hand-built fuzz
/// system is stable down to the exact text. Guards the corpus/report
/// format against accidental drift.
#[test]
fn render_golden_output_on_handbuilt_fuzz_system() {
    // The injected-safety pattern, pinned by hand: f0 increments then
    // decrements counter 0; f1 asserts it is zero in between.
    let scripts = vec![
        vec![FuzzOp::Inc(0), FuzzOp::Step, FuzzOp::Dec(0)],
        vec![FuzzOp::Step, FuzzOp::AssertZero(0)],
    ];
    let sys = FuzzSystem::from_scripts(scripts, 1, 0, 0);
    let report = Explorer::new(
        || sys.clone(),
        chess_core::strategy::Dfs::new(),
        Config::fair(),
    )
    .run();
    let SearchOutcome::SafetyViolation(cex) = report.outcome else {
        panic!(
            "expected the hand-built violation, got {:?}",
            report.outcome
        );
    };
    let rendered = cex.render(|| sys.clone());
    // Footprint annotations name the touched object on counter ops;
    // thread-local steps carry none.
    let golden = "\
safety violation (4 steps): f1: assert failed: c0 = 1 != 0
    0  f0               inc(c0)  [write counter0]
    1  f0               step
    2  f1               step
    3  f1               assert(c0 == 0)  [read counter0]
  =>  violation in t1: assert failed: c0 = 1 != 0
";
    assert_eq!(rendered, golden, "rendered:\n{rendered}");
}
