//! Stateless model checking stands on deterministic re-execution: the
//! same schedule must reproduce the same states, outcomes and
//! counterexamples, across every workload.

use chess_core::strategy::{FixedSchedule, RandomWalk};
use chess_core::{replay, Config, Explorer, SearchOutcome, SystemStatus, TransitionSystem};
use chess_workloads::channels::{fifo_pipeline, FifoConfig};
use chess_workloads::miniboot::{miniboot, BootConfig};
use chess_workloads::philosophers::{philosophers, PhilosophersConfig};
use chess_workloads::promise::{promises, PromiseConfig};
use chess_workloads::simple::racy_counter;
use chess_workloads::workerpool::{worker_pool, PoolConfig};
use chess_workloads::wsq::{wsq, WsqConfig};

/// Runs one random execution, recording the schedule and per-step
/// fingerprints; replays it and checks the fingerprints match exactly.
fn assert_replays<P, F>(mut factory: F)
where
    P: TransitionSystem,
    F: FnMut() -> P,
{
    use chess_core::Decision;

    let mut sys = factory();
    let mut schedule: Vec<Decision> = Vec::new();
    let mut fingerprints = vec![sys.fingerprint()];
    let mut rng: u64 = 0xDEADBEEF;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for _ in 0..400 {
        if !sys.status().is_running() {
            break;
        }
        let es = sys.enabled_set();
        let options: Vec<_> = es.iter().collect();
        let t = options[(next() % options.len() as u64) as usize];
        let branch = (next() % sys.branching(t) as u64) as u32;
        sys.step(t, branch);
        schedule.push(Decision {
            thread: t,
            choice: branch,
        });
        fingerprints.push(sys.fingerprint());
    }

    // Replay on a fresh instance.
    let mut sys2 = factory();
    let mut fingerprints2 = vec![sys2.fingerprint()];
    for d in &schedule {
        sys2.step(d.thread, d.choice);
        fingerprints2.push(sys2.fingerprint());
    }
    assert_eq!(fingerprints, fingerprints2, "nondeterministic replay");
    assert_eq!(sys.state_bytes(), sys2.state_bytes());
}

#[test]
fn all_workloads_replay_deterministically() {
    assert_replays(|| racy_counter(3));
    assert_replays(|| philosophers(PhilosophersConfig::table2(3)));
    assert_replays(|| wsq(WsqConfig::table2(2)));
    assert_replays(|| promises(PromiseConfig::correct()));
    assert_replays(|| worker_pool(PoolConfig::correct()));
    assert_replays(|| fifo_pipeline(FifoConfig::correct_fanin()));
    assert_replays(|| miniboot(BootConfig::small()));
}

/// A counterexample's schedule, replayed via the public `replay` helper,
/// reproduces the violation.
#[test]
fn counterexample_schedules_reproduce_violations() {
    let factory = || racy_counter(2);
    let report = Explorer::new(factory, RandomWalk::new(11), Config::fair()).run();
    let cex = match report.outcome {
        SearchOutcome::SafetyViolation(c) => c,
        o => panic!("expected violation, got {o:?}"),
    };
    let mut sys = factory();
    let status = replay(&mut sys, &cex.schedule);
    assert!(
        matches!(status, SystemStatus::Violation(..)),
        "replay produced {status:?}"
    );
}

/// The FixedSchedule strategy drives the explorer through exactly the
/// recorded execution.
#[test]
fn fixed_schedule_reproduces_search_outcome() {
    let factory = || racy_counter(2);
    let report = Explorer::new(factory, RandomWalk::new(11), Config::fair()).run();
    let cex = report.outcome.counterexample().unwrap().clone();

    let config = Config::fair();
    let report2 = Explorer::new(factory, FixedSchedule::new(cex.schedule.clone()), config).run();
    match report2.outcome {
        SearchOutcome::SafetyViolation(c2) => {
            assert_eq!(c2.schedule, cex.schedule);
            assert_eq!(c2.message, cex.message);
        }
        o => panic!("replay search produced {o:?}"),
    }
}

/// Rendering a counterexample twice gives identical text (pure replay).
#[test]
fn render_is_pure() {
    let factory = || racy_counter(2);
    let report = Explorer::new(factory, RandomWalk::new(3), Config::fair()).run();
    let cex = report.outcome.counterexample().unwrap();
    assert_eq!(cex.render(factory), cex.render(factory));
}
