//! `chess-integration` — cross-crate integration tests.
//!
//! This package exists only for its `tests/` directory: the paper's
//! theorems as property-based tests, the liveness ground-truth matrix,
//! replay-determinism checks, coverage cross-checks, strategy
//! combinatorics, and explorer-mode coverage. The library itself is
//! intentionally empty.
