#!/usr/bin/env bash
# Daemon smoke for the campaign daemon: socket front-end, persistent
# store, sharded check jobs, and crash recovery.
#
# Five acts, all against the same store directory:
#
#   1. Baseline: a `serve` run of the unsharded manifest; its report
#      (wall-clock free) is the reference output.
#   2. Sharded submit: the same campaign with the big check job split
#      across shards, submitted over the unix socket with --watch. The
#      merged report must be byte-identical to the unsharded baseline.
#   3. Cached resubmit: submitting the identical manifest again must be
#      answered from the store ("cached") without re-running anything.
#   4. SIGKILL the daemon mid-campaign (a second, fresh campaign), then
#      restart on the same socket and store; the resumed campaign's
#      report must be byte-identical to a clean serve of it.
#   5. Chaos garbage: a client that leads with a garbage line must get a
#      structured error and the daemon must keep serving.
#
# Usage: scripts/daemon_smoke.sh  (FAIR_CHESS overrides the binary path)
set -euo pipefail

BIN="${FAIR_CHESS:-target/release/fair-chess}"
WORKDIR="$(mktemp -d)"
SOCK="$WORKDIR/daemon.sock"
STORE="$WORKDIR/store"
DAEMON_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2> /dev/null || true
  rm -rf "$WORKDIR"
}
trap cleanup EXIT

expect_exit() {
  local want="$1"; shift
  local got=0
  "$@" || got=$?
  if [ "$got" -ne "$want" ]; then
    echo "expected exit $want, got $got: $*" >&2
    exit 1
  fi
}

start_daemon() {
  "$BIN" daemon --listen "$SOCK" --store "$STORE" --workers 2 \
    > "$WORKDIR/daemon.log" 2>&1 &
  DAEMON_PID=$!
  local tries=0
  until "$BIN" status --connect "$SOCK" > /dev/null 2>&1; do
    tries=$((tries + 1))
    if [ "$tries" -gt 500 ]; then
      echo "daemon never came up" >&2
      cat "$WORKDIR/daemon.log" >&2
      exit 1
    fi
    if ! kill -0 "$DAEMON_PID" 2> /dev/null; then
      echo "daemon exited at startup" >&2
      cat "$WORKDIR/daemon.log" >&2
      exit 1
    fi
    sleep 0.02
  done
}

# The check job is clean and exhausts its space well inside the budget,
# so the sharded merge is guaranteed byte-identical to the sequential
# run; the racy job and the fuzz job stay unsharded.
UNSHARDED="$WORKDIR/unsharded.json"
cat > "$UNSHARDED" <<'EOF'
{"jobs": [
  {"id": "wide", "workload": "counter", "max_executions": 100000},
  {"id": "racy", "workload": "counter", "bug": "racy", "max_executions": 20000},
  {"id": "fuzz-1", "kind": "fuzz", "seed": 7, "systems": 4, "inject": ["deadlock"], "max_states": 50000}
]}
EOF
SHARDED="$WORKDIR/sharded.json"
cat > "$SHARDED" <<'EOF'
{"jobs": [
  {"id": "wide", "workload": "counter", "max_executions": 100000, "shards": 2},
  {"id": "racy", "workload": "counter", "bug": "racy", "max_executions": 20000},
  {"id": "fuzz-1", "kind": "fuzz", "seed": 7, "systems": 4, "inject": ["deadlock"], "max_states": 50000}
]}
EOF

echo "== baseline: unsharded serve run is the reference report"
expect_exit 1 "$BIN" serve "$UNSHARDED" --workers 2 > "$WORKDIR/baseline.out"

echo "== daemon up on a unix socket"
start_daemon

echo "== sharded submit over the socket merges byte-identically"
expect_exit 1 "$BIN" submit "$SHARDED" --connect "$SOCK" --watch \
  > "$WORKDIR/submit.out" 2> "$WORKDIR/submit.err"
CAMPAIGN="$(awk '/^campaign /{print $2}' "$WORKDIR/submit.out" | head -n 1 | tr -d ':')"
[ -n "$CAMPAIGN" ] || { echo "no campaign digest in submit output" >&2; exit 1; }
grep -q "wide#0:" "$WORKDIR/submit.out"
grep -q "wide#1:" "$WORKDIR/submit.out"
expect_exit 1 "$BIN" results "$CAMPAIGN" --connect "$SOCK" > "$WORKDIR/sharded.out"
diff "$WORKDIR/baseline.out" "$WORKDIR/sharded.out"

echo "== resubmit of the finished campaign is answered from the store"
expect_exit 1 "$BIN" submit "$SHARDED" --connect "$SOCK" > "$WORKDIR/resubmit.out"
grep -q "cached" "$WORKDIR/resubmit.out"

echo "== SIGKILL the daemon mid-campaign, restart resumes byte-identically"
SLOW="$WORKDIR/slow.json"
cat > "$SLOW" <<'EOF'
{"jobs": [
  {"id": "p1", "workload": "philosophers", "strategy": "random:1", "max_executions": 8000},
  {"id": "p2", "workload": "philosophers", "strategy": "random:2", "max_executions": 8000},
  {"id": "p3", "workload": "philosophers", "strategy": "random:3", "max_executions": 8000},
  {"id": "p4", "workload": "philosophers", "strategy": "random:4", "max_executions": 8000},
  {"id": "p5", "workload": "philosophers", "strategy": "random:5", "max_executions": 8000},
  {"id": "p6", "workload": "philosophers", "strategy": "random:6", "max_executions": 8000}
]}
EOF
expect_exit 3 "$BIN" serve "$SLOW" --workers 2 > "$WORKDIR/slow-baseline.out"

"$BIN" submit "$SLOW" --connect "$SOCK" > "$WORKDIR/slow-submit.out"
SLOW_CAMPAIGN="$(awk '/^campaign /{print $2}' "$WORKDIR/slow-submit.out" | head -n 1 | tr -d ':')"
[ -n "$SLOW_CAMPAIGN" ] || { echo "no campaign digest for slow submit" >&2; exit 1; }
tries=0
until "$BIN" status "$SLOW_CAMPAIGN" --connect "$SOCK" 2> /dev/null \
    | grep -q '"done": [1-5]'; do
  tries=$((tries + 1))
  if [ "$tries" -gt 1500 ]; then echo "campaign never made progress" >&2; exit 1; fi
  sleep 0.02
done
kill -KILL "$DAEMON_PID" 2> /dev/null || true
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""

start_daemon
expect_exit 3 "$BIN" watch "$SLOW_CAMPAIGN" --connect "$SOCK" > /dev/null 2>&1
expect_exit 3 "$BIN" results "$SLOW_CAMPAIGN" --connect "$SOCK" > "$WORKDIR/slow-resumed.out"
diff "$WORKDIR/slow-baseline.out" "$WORKDIR/slow-resumed.out"

echo "== chaos garbage gets a structured error, daemon keeps serving"
FAIR_CHESS_CHAOS="garbage:1,seed:7" \
  expect_exit 0 "$BIN" status --connect "$SOCK" > /dev/null 2> "$WORKDIR/chaos.err"
grep -q "chaos garbage" "$WORKDIR/chaos.err"
expect_exit 0 "$BIN" status --connect "$SOCK" > /dev/null

echo "== clean shutdown over the socket"
expect_exit 0 "$BIN" shutdown --connect "$SOCK"
wait "$DAEMON_PID" 2> /dev/null || true
DAEMON_PID=""

echo "daemon smoke passed: sharded, cached, killed, and resumed campaigns all converge"
