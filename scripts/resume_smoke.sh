#!/usr/bin/env bash
# Kill-and-resume determinism smoke.
#
# For each workload: run an uninterrupted baseline, then a checkpointed
# run interrupted mid-flight with SIGINT (must exit 6 and flush a final
# journal), then a resumed run killed hard with SIGKILL (the atomic
# temp-file + rename write discipline must leave a parseable journal),
# and finally resume to completion. The resumed report must match the
# uninterrupted baseline byte-for-byte, wall-clock time excepted.
#
# Usage: scripts/resume_smoke.sh  (FAIR_CHESS overrides the binary path)
set -euo pipefail

BIN="${FAIR_CHESS:-target/release/fair-chess}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

# Strips the trailing wall-clock field, the one legitimately
# nondeterministic part of a report line.
normalize() { sed 's/, [^,]*$//'; }

# Waits (up to ~10s) for the journal to exist, i.e. for the search to be
# measurably mid-flight before we interrupt it.
wait_for_file() {
  local path="$1" tries=0
  until [ -s "$path" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 500 ]; then return 1; fi
    sleep 0.02
  done
}

run_case() {
  local name="$1"
  local journal="$WORKDIR/$name.journal"
  local pid status

  echo "== $name: uninterrupted baseline"
  "$BIN" check "$name" --no-trace > "$WORKDIR/$name.full"

  echo "== $name: SIGINT mid-flight must exit 6 and flush a checkpoint"
  "$BIN" check "$name" --no-trace --checkpoint "$journal" --checkpoint-every 200 \
      > "$WORKDIR/$name.partial" &
  pid=$!
  wait_for_file "$journal" || { echo "no checkpoint appeared" >&2; exit 1; }
  kill -INT "$pid"
  status=0
  wait "$pid" || status=$?
  if [ "$status" -ne 6 ]; then
    echo "expected exit 6 (interrupted, resumable), got $status" >&2
    exit 1
  fi

  echo "== $name: SIGKILL mid-flight leaves a consistent journal"
  "$BIN" check "$name" --no-trace --resume "$journal" --checkpoint "$journal" \
      --checkpoint-every 200 > /dev/null 2>&1 &
  pid=$!
  sleep 0.3
  kill -KILL "$pid" 2> /dev/null || true
  wait "$pid" 2> /dev/null || true
  [ -s "$journal" ] || { echo "journal lost after SIGKILL" >&2; exit 1; }

  echo "== $name: resume to completion, diff against the baseline"
  "$BIN" check "$name" --no-trace --resume "$journal" > "$WORKDIR/$name.resumed"
  diff <(normalize < "$WORKDIR/$name.full") <(normalize < "$WORKDIR/$name.resumed")
  echo "== $name: converged"
}

run_case treiber
run_case rwcache

echo "resume smoke passed: interrupted searches converge to the uninterrupted report"
