#!/usr/bin/env bash
# Chaos smoke for the process-isolated campaign runner.
#
# Three acts, all against the same fixed campaign manifest:
#
#   1. Baseline: a clean `serve` run; its report (already wall-clock
#      free) is the reference output, and the worst job outcome must
#      map to the documented exit code (here 1: one job finds a safety
#      violation).
#   2. Chaos: re-run under FAIR_CHESS_CHAOS with workers aborting,
#      hanging, and babbling at fixed probabilities and a fixed seed.
#      The supervisor must retry/quarantine its way to completion, and
#      because chaos rolls are keyed on (seed, job, attempt), a second
#      chaos run must produce the byte-identical report.
#   3. Kill the supervisor: SIGKILL mid-campaign (no handler runs; only
#      the atomic checkpoint rewrites protect state), then --resume and
#      require the final report byte-identical to the baseline.
#
# Usage: scripts/chaos_smoke.sh  (FAIR_CHESS overrides the binary path)
set -euo pipefail

BIN="${FAIR_CHESS:-target/release/fair-chess}"
WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

MANIFEST="$WORKDIR/campaign.json"
cat > "$MANIFEST" <<'EOF'
{"jobs": [
  {"id": "clean",  "workload": "counter", "max_executions": 5000},
  {"id": "racy",   "workload": "counter", "bug": "racy", "max_executions": 5000},
  {"id": "phil-1", "workload": "philosophers", "strategy": "random:1", "max_executions": 20000},
  {"id": "phil-2", "workload": "philosophers", "strategy": "random:2", "max_executions": 20000},
  {"id": "phil-3", "workload": "philosophers", "strategy": "random:3", "max_executions": 20000},
  {"id": "fuzz-1", "kind": "fuzz", "seed": 7, "systems": 4, "inject": ["deadlock"], "max_states": 50000}
]}
EOF

expect_exit() {
  local want="$1"; shift
  local got=0
  "$@" || got=$?
  if [ "$got" -ne "$want" ]; then
    echo "expected exit $want, got $got: $*" >&2
    exit 1
  fi
}

echo "== baseline: clean campaign, worst job outcome maps to exit 1"
expect_exit 1 "$BIN" serve "$MANIFEST" --workers 2 > "$WORKDIR/baseline.out"

echo "== chaos: aborting/hanging/babbling workers, campaign still converges"
export FAIR_CHESS_CHAOS="abort:0.3,hang:0.1,garbage:0.2,seed:42"
expect_exit 1 env FAIR_CHESS_CHAOS="$FAIR_CHESS_CHAOS" \
  "$BIN" serve "$MANIFEST" --workers 2 --heartbeat-timeout 1 --max-attempts 6 \
  > "$WORKDIR/chaos-1.out" 2> "$WORKDIR/chaos-1.err"
grep -q "workers spawned" "$WORKDIR/chaos-1.err"

echo "== chaos determinism: identical seed, identical report"
expect_exit 1 env FAIR_CHESS_CHAOS="$FAIR_CHESS_CHAOS" \
  "$BIN" serve "$MANIFEST" --workers 2 --heartbeat-timeout 1 --max-attempts 6 \
  > "$WORKDIR/chaos-2.out" 2> /dev/null
diff "$WORKDIR/chaos-1.out" "$WORKDIR/chaos-2.out"
unset FAIR_CHESS_CHAOS

echo "== chaos survivors match the baseline job-for-job"
# Chaos must change *when* things run, never *what* they compute: every
# job line a chaos run reports as done must equal the baseline's.
if ! diff "$WORKDIR/baseline.out" "$WORKDIR/chaos-1.out"; then
  # Quarantined jobs may differ; done jobs must not.
  grep -v "quarantined" "$WORKDIR/chaos-1.out" | grep -v "^campaign:" | while read -r line; do
    grep -qxF "$line" "$WORKDIR/baseline.out" || {
      echo "chaos changed a job result: $line" >&2; exit 1; }
  done
fi

echo "== SIGKILL the supervisor mid-campaign, resume byte-identically"
JOURNAL="$WORKDIR/journal.json"
"$BIN" serve "$MANIFEST" --workers 2 --checkpoint "$JOURNAL" \
  > /dev/null 2>&1 &
pid=$!
tries=0
until grep -q '"attempts"' "$JOURNAL" 2> /dev/null; do
  tries=$((tries + 1))
  if [ "$tries" -gt 500 ]; then echo "no verdict journaled" >&2; exit 1; fi
  if ! kill -0 "$pid" 2> /dev/null; then break; fi
  sleep 0.02
done
kill -KILL "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true
[ -s "$JOURNAL" ] || { echo "journal lost after SIGKILL" >&2; exit 1; }

expect_exit 1 "$BIN" serve "$MANIFEST" --workers 2 --resume "$JOURNAL" \
  > "$WORKDIR/resumed.out" 2> "$WORKDIR/resumed.err"
diff "$WORKDIR/baseline.out" "$WORKDIR/resumed.out"

echo "chaos smoke passed: sabotaged and killed campaigns converge to the baseline report"
